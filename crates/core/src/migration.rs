//! Minimum-cost assignment of displaced jobs to redeployment candidates.
//!
//! When a revocation storm displaces several jobs at once, the engine's
//! default behavior re-deploys them one at a time, each greedily taking
//! the candidate that looks best *for it alone*. That first-fit order can
//! pile every job back onto the market that just revoked them. This
//! module provides the optimal alternative: the Kuhn–Munkres (Hungarian)
//! algorithm, which minimizes the *total* assignment cost over all
//! job×candidate pairs. No external dependencies; the implementation is
//! the classic O(rows²·cols) potentials formulation.
//!
//! Costs are `f64`; `f64::INFINITY` marks a forbidden pair. Rows are jobs,
//! columns are candidates, and there must be at least as many candidates
//! as jobs (callers replicate candidates into capacity slots to satisfy
//! this).

/// Minimum-cost one-to-one assignment of each row to a distinct column.
///
/// Returns `assignment[row] = col` minimizing the sum of
/// `cost[row][assignment[row]]`. Requires a rectangular matrix with
/// `cols >= rows >= 1`; every row must have at least one finite cost.
///
/// # Panics
///
/// Panics if the matrix is empty, ragged, or has fewer columns than rows.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let rows = cost.len();
    assert!(rows > 0, "assignment needs at least one row");
    let cols = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == cols), "cost matrix must be rectangular");
    assert!(cols >= rows, "assignment needs cols ({cols}) >= rows ({rows})");

    // Potentials formulation over a 1-indexed matrix with a dummy row 0 /
    // column 0. `way[j]` remembers the column preceding `j` on the
    // alternating path; `p[j]` is the row matched to column `j`.
    let mut u = vec![0.0f64; rows + 1];
    let mut v = vec![0.0f64; cols + 1];
    let mut p = vec![0usize; cols + 1];
    let mut way = vec![0usize; cols + 1];
    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            assert!(
                delta.is_finite(),
                "row {i0} has no remaining finite-cost column"
            );
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path back to the dummy column.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; rows];
    for j in 1..=cols {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// First-fit greedy baseline: each row, in order, takes the cheapest
/// still-unused column. This mirrors the engine's default per-job redeploy
/// loop and is the baseline `fig_grace` ablates against.
///
/// # Panics
///
/// Panics under the same shape conditions as [`min_cost_assignment`], or
/// if some row finds only used/infinite columns.
pub fn greedy_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let rows = cost.len();
    assert!(rows > 0, "assignment needs at least one row");
    let cols = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == cols), "cost matrix must be rectangular");
    assert!(cols >= rows, "assignment needs cols ({cols}) >= rows ({rows})");
    let mut used = vec![false; cols];
    let mut assignment = Vec::with_capacity(rows);
    for row in cost {
        let (best, best_cost) = row
            .iter()
            .enumerate()
            .filter(|&(j, c)| !used[j] && c.is_finite())
            .map(|(j, &c)| (j, c))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("row has no remaining finite-cost column");
        let _ = best_cost;
        used[best] = true;
        assignment.push(best);
    }
    assignment
}

/// Total cost of an assignment over a cost matrix.
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(row, &col)| cost[row][col])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_classic_square_instance() {
        // Known optimum: rows take columns (1, 0, 2) for 1+2+2 = 5.
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = min_cost_assignment(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
        // All distinct.
        let mut cols = a.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), a.len());
    }

    #[test]
    fn beats_greedy_on_the_textbook_trap() {
        // Greedy row 0 grabs column 0 (cost 1), forcing row 1 into cost
        // 100; the optimum crosses over for 2 + 2 = 4.
        let cost = vec![vec![1.0, 2.0], vec![2.0, 100.0]];
        let g = greedy_assignment(&cost);
        let k = min_cost_assignment(&cost);
        assert_eq!(assignment_cost(&cost, &g), 101.0);
        assert_eq!(assignment_cost(&cost, &k), 4.0);
    }

    #[test]
    fn handles_rectangular_and_single_row_instances() {
        let cost = vec![vec![9.0, 4.0, 7.0, 1.0]];
        assert_eq!(min_cost_assignment(&cost), vec![3]);
        let cost = vec![vec![5.0, 1.0, 8.0], vec![7.0, 6.0, 2.0]];
        let a = min_cost_assignment(&cost);
        assert_eq!(assignment_cost(&cost, &a), 3.0);
    }

    #[test]
    fn respects_forbidden_pairs() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 3.0], vec![2.0, inf]];
        let a = min_cost_assignment(&cost);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    #[should_panic(expected = "cols")]
    fn rejects_more_rows_than_columns() {
        min_cost_assignment(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn greedy_matches_optimum_when_rows_do_not_compete() {
        let cost = vec![
            vec![1.0, 10.0, 10.0],
            vec![10.0, 1.0, 10.0],
            vec![10.0, 10.0, 1.0],
        ];
        let g = greedy_assignment(&cost);
        let k = min_cost_assignment(&cost);
        assert_eq!(assignment_cost(&cost, &g), assignment_cost(&cost, &k));
    }
}
