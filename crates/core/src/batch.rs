//! Batched sweep execution: scenario-grouped campaign fan-out over shared
//! spines, pools, predictors and engine scratch.
//!
//! A sweep submits thousands of [`CampaignRequest`]s against a handful of
//! market scenarios. Run one at a time ([`CampaignRequest::run_serial`]),
//! every campaign rebuilds the pool, re-trains any learned predictor,
//! re-derives the per-market SPE table and re-allocates the engine's job
//! state. [`BatchRunner::run_many`] amortizes all of it: requests are
//! grouped by scenario, each group resolves its pool, [`PoolSpine`] and
//! predictors exactly once through shared tiers, and a [`GroupSession`]
//! threads one [`EngineScratch`] through the group so the hot loop is
//! allocation-free. Groups fan out across threads; within a group,
//! campaigns run in submission order.
//!
//! The batched path is *bit-identical* to the serial reference: the spine
//! mirrors [`spottune_market::PriceTrace::first_exceed`] exactly, predictor
//! training is a pure function of `(scenario, kind)`, and the arena resets
//! job slots to precisely what a fresh build would hold. The
//! `batch_equivalence` suite locks this over the full policy × estimator
//! matrix.

use crate::arena::EngineScratch;
use crate::campaign::{Campaign, CampaignRequest};
use crate::engine::{compute_spe_means, Engine, SpeTable, TransientExec};
use crate::policy::PolicyMode;
use crate::provision::OracleEstimator;
use crate::report::HptReport;
use crate::soa::{JobLanes, COHORT_WIDTH};
use rayon::prelude::*;
use spottune_cloud::FaultPlan;
use spottune_market::{
    CacheStats, ConstantEstimator, EstimatorSpec, MarketPool, MarketScenario, PoolCache,
    PoolSpine, RevocationEstimator, SpineCache,
};
use spottune_mlsim::{CurveCache, Workload};
use spottune_revpred::{MarketPredictorSet, PredictorCache, PredictorKind, ProbeCachedPredictors};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counter snapshot of one [`BatchRunner`]'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Scenario groups opened (one [`GroupSession`] each).
    pub groups: u64,
    /// Campaigns executed through the batched path.
    pub campaigns: u64,
    /// Pool-tier counters.
    pub pool_cache: CacheStats,
    /// Spine-tier counters.
    pub spine_cache: CacheStats,
    /// Trained-predictor-tier counters.
    pub predictor_cache: CacheStats,
    /// Revocation lookups answered by resident spines (the CI
    /// sweep-throughput check asserts this is non-zero: the batched path
    /// must actually route through the spine, not silently fall back to
    /// the linear trace scan).
    pub spine_queries: u64,
    /// Cross-campaign lane-kernel passes (one per cohort barrier with at
    /// least one extrapolating job).
    pub kernel_invocations: u64,
    /// Kernel lane slots processed, including ragged-remainder padding to
    /// the 8-wide chunk boundary. `lane_jobs / lane_slots` is the lane
    /// occupancy.
    pub lane_slots: u64,
    /// Jobs whose final-metric extrapolation ran through kernel lanes.
    pub lane_jobs: u64,
    /// Probe-context memo hits across the SoA path's learned estimators
    /// (each hit skips one full sample assembly).
    pub probe_hits: u64,
    /// Probe-context memo misses (one sample assembly + context build each).
    pub probe_misses: u64,
}

impl BatchStats {
    /// Fraction of processed lane slots that carried a real job
    /// (1.0 when every 8-wide chunk was full); `None` before any kernel
    /// work.
    pub fn lane_occupancy(&self) -> Option<f64> {
        (self.lane_slots > 0).then(|| self.lane_jobs as f64 / self.lane_slots as f64)
    }
}

#[derive(Debug, Default)]
struct BatchCounters {
    groups: AtomicU64,
    campaigns: AtomicU64,
    kernel_invocations: AtomicU64,
    lane_slots: AtomicU64,
    lane_jobs: AtomicU64,
    probe_hits: AtomicU64,
    probe_misses: AtomicU64,
}

/// Shared-tier batched campaign executor.
///
/// Cloning a runner clones handles to the same tiers, so a server can hand
/// one to every worker and a `(scenario, kind)` predictor still trains
/// once per process. Equal request slices produce equal report vectors
/// regardless of thread count or grouping: scheduling only changes
/// wall-clock, never bits.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    pools: PoolCache,
    spines: SpineCache,
    curves: CurveCache,
    predictors: PredictorCache,
    /// Optional revocation-storm overlay applied to every engine (the
    /// serial reference for fault-plan equivalence builds its engines with
    /// the same plan).
    fault_plan: Option<FaultPlan>,
    /// SoA hot path: cohort-staged campaigns, cross-campaign lane
    /// prediction, probe-cached learned estimators. On by default;
    /// `with_soa(false)` is the A/B reference (the historical one-campaign-
    /// at-a-time group loop). Both produce bit-identical reports.
    soa: bool,
    counters: Arc<BatchCounters>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner {
            pools: PoolCache::default(),
            spines: SpineCache::default(),
            curves: CurveCache::default(),
            predictors: PredictorCache::default(),
            fault_plan: None,
            soa: true,
            counters: Arc::default(),
        }
    }
}

impl BatchRunner {
    /// Creates a runner with fresh, unbounded tiers.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Toggles the SoA cohort path (default on).
    pub fn with_soa(mut self, soa: bool) -> Self {
        self.soa = soa;
        self
    }

    /// Whether the SoA cohort path is active.
    pub fn soa(&self) -> bool {
        self.soa
    }

    /// Builder-style tier override: share a server's existing caches.
    pub fn with_tiers(
        mut self,
        pools: PoolCache,
        spines: SpineCache,
        curves: CurveCache,
        predictors: PredictorCache,
    ) -> Self {
        self.pools = pools;
        self.spines = spines;
        self.curves = curves;
        self.predictors = predictors;
        self
    }

    /// Builder-style fault-plan overlay, threaded into every engine.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Opens a session over one scenario: pool and spine resolved once,
    /// scratch and memo tables empty. The server's worker loop drives this
    /// directly so a group streams responses as campaigns finish.
    pub fn session(&self, scenario: MarketScenario) -> GroupSession<'_> {
        let pool = self.pools.get(scenario);
        let spine = self.spines.get(scenario, &pool);
        self.counters.groups.fetch_add(1, Ordering::Relaxed);
        GroupSession {
            runner: self,
            scenario,
            pool,
            spine,
            scratch: EngineScratch::new(),
            estimators: Vec::new(),
            spe_memos: Vec::new(),
            truth_memos: BTreeMap::new(),
            lane_scratch: Vec::new(),
            lanes: JobLanes::new(),
        }
    }

    /// Runs every request, batched: grouped by scenario, groups fanned out
    /// across threads, reports returned in *request order* (index `i` of
    /// the result is the report of `requests[i]`). With the SoA path on
    /// (the default), each group's requests are staged through
    /// [`GroupSession::run_cohort`] in [`COHORT_WIDTH`] chunks; either way
    /// the report vector is bit-identical.
    pub fn run_many(&self, requests: &[CampaignRequest]) -> Vec<HptReport> {
        let mut groups: BTreeMap<MarketScenario, Vec<usize>> = BTreeMap::new();
        for (i, req) in requests.iter().enumerate() {
            groups.entry(req.scenario).or_default().push(i);
        }
        let groups: Vec<(MarketScenario, Vec<usize>)> = groups.into_iter().collect();
        let per_group: Vec<Vec<(usize, HptReport)>> = groups
            .into_par_iter()
            .map(|(scenario, idxs)| {
                let mut session = self.session(scenario);
                if self.soa {
                    let mut out = Vec::with_capacity(idxs.len());
                    for chunk in idxs.chunks(COHORT_WIDTH) {
                        let cohort: Vec<&CampaignRequest> =
                            chunk.iter().map(|&i| &requests[i]).collect();
                        let reports = session.run_cohort(&cohort);
                        out.extend(chunk.iter().copied().zip(reports));
                    }
                    out
                } else {
                    idxs.into_iter().map(|i| (i, session.run_one(&requests[i]))).collect()
                }
            })
            .collect();
        let mut out: Vec<Option<HptReport>> = Vec::new();
        out.resize_with(requests.len(), || None);
        for (i, report) in per_group.into_iter().flatten() {
            out[i] = Some(report);
        }
        out.into_iter().map(|r| r.expect("every request produces a report")).collect()
    }

    /// Counter snapshot across every session this runner (and its clones)
    /// ever opened.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            groups: self.counters.groups.load(Ordering::Relaxed),
            campaigns: self.counters.campaigns.load(Ordering::Relaxed),
            pool_cache: self.pools.stats(),
            spine_cache: self.spines.stats(),
            predictor_cache: self.predictors.stats(),
            spine_queries: self.spines.resident_queries(),
            kernel_invocations: self.counters.kernel_invocations.load(Ordering::Relaxed),
            lane_slots: self.counters.lane_slots.load(Ordering::Relaxed),
            lane_jobs: self.counters.lane_jobs.load(Ordering::Relaxed),
            probe_hits: self.counters.probe_hits.load(Ordering::Relaxed),
            probe_misses: self.counters.probe_misses.load(Ordering::Relaxed),
        }
    }
}

impl Campaign {
    /// Batched counterpart of looping [`CampaignRequest::run_serial`]:
    /// groups `requests` by scenario, shares pools/spines/predictors per
    /// group and returns reports in request order. One-shot convenience
    /// over a fresh [`BatchRunner`] — sweeps that run more than once
    /// should hold a runner so its tiers persist.
    pub fn run_many(requests: &[CampaignRequest]) -> Vec<HptReport> {
        BatchRunner::new().run_many(requests)
    }
}

/// A group-resident estimator, built at most once per `(spec)` per session.
enum GroupEstimator {
    Oracle(OracleEstimator),
    Constant(ConstantEstimator),
    Learned(Arc<MarketPredictorSet>),
    /// Learned predictors behind the `(market, t)`-keyed probe-context
    /// memo — the SoA path's estimator (bit-identical probabilities, one
    /// sample assembly per distinct probe site instead of one per probe).
    Probed(ProbeCachedPredictors),
}

impl GroupEstimator {
    fn as_dyn(&self) -> &dyn RevocationEstimator {
        match self {
            GroupEstimator::Oracle(e) => e,
            GroupEstimator::Constant(e) => e,
            GroupEstimator::Learned(e) => e.as_ref(),
            GroupEstimator::Probed(e) => e,
        }
    }
}

/// One scenario group's execution state: the resolved pool and spine plus
/// the memo tables ([`EstimatorSpec`] → built estimator, [`Workload`] →
/// SPE table) and the reusable [`EngineScratch`].
///
/// Campaigns submitted through [`GroupSession::run_one`] are bit-identical
/// to [`CampaignRequest::run_serial`] over the session's scenario — the
/// memos only change what is recomputed, never an answer.
pub struct GroupSession<'a> {
    runner: &'a BatchRunner,
    scenario: MarketScenario,
    pool: MarketPool,
    spine: Arc<PoolSpine>,
    scratch: EngineScratch,
    /// Spec-keyed estimator memo; linear probe (a sweep uses a handful of
    /// specs, and `EstimatorSpec` is a tiny `Copy` enum).
    estimators: Vec<(EstimatorSpec, GroupEstimator)>,
    /// Workload-keyed per-market SPE tables shared across the group's
    /// engines via [`Engine::with_spe_means`].
    spe_memos: Vec<(Workload, Arc<SpeTable>)>,
    /// (workload-memo index, seed) → ground-truth finals. A pure function
    /// of its key, so the cohort path hands every campaign a shared copy
    /// instead of re-deriving the finals (two curve-memo lookups plus key
    /// formatting) per report.
    truth_memos: BTreeMap<(usize, u64), Arc<Vec<f64>>>,
    /// One [`EngineScratch`] per cohort slot (slot `i` always serves
    /// cohort position `i`, so arena reuse works exactly as in the serial
    /// session loop).
    lane_scratch: Vec<EngineScratch>,
    /// The cohort's SoA prediction barrier.
    lanes: JobLanes,
}

impl Drop for GroupSession<'_> {
    /// Flushes the group's probe-memo counters into the runner (each
    /// [`GroupEstimator::Probed`] is session-resident, so its lifetime
    /// totals are this group's deltas).
    fn drop(&mut self) {
        for (_, estimator) in &self.estimators {
            if let GroupEstimator::Probed(probed) = estimator {
                let (hits, misses) = probed.probe_stats();
                self.runner.counters.probe_hits.fetch_add(hits, Ordering::Relaxed);
                self.runner.counters.probe_misses.fetch_add(misses, Ordering::Relaxed);
            }
        }
    }
}

impl GroupSession<'_> {
    /// Runs one campaign of this session's scenario. `req.scenario` must
    /// equal the scenario the session was opened for (debug-asserted; the
    /// pool is resolved once at session open).
    pub fn run_one(&mut self, req: &CampaignRequest) -> HptReport {
        debug_assert_eq!(
            req.scenario, self.scenario,
            "request submitted to a session of a different scenario"
        );
        self.runner.counters.campaigns.fetch_add(1, Ordering::Relaxed);
        let est_idx = self.estimator_index(req.estimator);
        let spe_idx = self.spe_index(&req.workload);
        let estimator = self.estimators[est_idx].1.as_dyn();
        let cfg = req.approach.config(req.seed);
        let mut policy = req.approach.build_policy(estimator, &cfg);
        let mut engine = Engine::new(cfg, req.workload.clone(), self.pool.clone())
            .with_curve_cache(self.runner.curves.clone())
            .with_spine(Arc::clone(&self.spine))
            .with_spe_means(Arc::clone(&self.spe_memos[spe_idx].1));
        if let Some(plan) = &self.runner.fault_plan {
            engine = engine.with_fault_plan(plan.clone());
        }
        engine.run_with_scratch(policy.as_mut(), &mut self.scratch)
    }

    /// Runs a cohort of campaigns of this session's scenario through the
    /// SoA hot path: phase 1 of every transient campaign first, then one
    /// cross-campaign lane-kernel pass over all of their final-metric
    /// extrapolations, then each campaign's selection/phase-2/report.
    /// Dedicated-mode campaigns (no prediction stage) run scalar in place.
    /// Reports are returned in cohort order and are bit-identical to
    /// [`GroupSession::run_one`] per request — the barrier reorders work
    /// only *between* independent campaigns.
    pub fn run_cohort(&mut self, reqs: &[&CampaignRequest]) -> Vec<HptReport> {
        // Resolve the memo indices up front (needs `&mut self`; the rest
        // of the cohort borrows session fields disjointly).
        let resolved: Vec<(usize, usize, Arc<Vec<f64>>)> = reqs
            .iter()
            .map(|req| {
                debug_assert_eq!(
                    req.scenario, self.scenario,
                    "request submitted to a session of a different scenario"
                );
                let est_idx = self.estimator_index(req.estimator);
                let spe_idx = self.spe_index(&req.workload);
                let truth = self.truth_for(spe_idx, req);
                (est_idx, spe_idx, truth)
            })
            .collect();
        self.runner.counters.campaigns.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        if self.lane_scratch.len() < reqs.len() {
            self.lane_scratch.resize_with(reqs.len(), EngineScratch::new);
        }
        let GroupSession { runner, pool, spine, estimators, spe_memos, lane_scratch, lanes, .. } =
            self;

        // Stage every campaign's engine and policy.
        let mut engines = Vec::with_capacity(reqs.len());
        let mut policies = Vec::with_capacity(reqs.len());
        for (req, &(est_idx, spe_idx, _)) in reqs.iter().zip(&resolved) {
            let estimator = estimators[est_idx].1.as_dyn();
            let cfg = req.approach.config(req.seed);
            let policy = req.approach.build_policy(estimator, &cfg);
            let mut engine = Engine::new(cfg, req.workload.clone(), pool.clone())
                .with_curve_cache(runner.curves.clone())
                .with_spine(Arc::clone(spine))
                .with_spe_means(Arc::clone(&spe_memos[spe_idx].1));
            if let Some(plan) = &runner.fault_plan {
                engine = engine.with_fault_plan(plan.clone());
            }
            engines.push(engine);
            policies.push(policy);
        }

        // Phase 1 per campaign (dedicated campaigns complete here).
        let mut reports: Vec<Option<HptReport>> = Vec::new();
        reports.resize_with(reqs.len(), || None);
        let mut execs: Vec<Option<TransientExec<'_>>> = Vec::with_capacity(reqs.len());
        for (i, (engine, policy)) in engines.iter().zip(policies.iter_mut()).enumerate() {
            let scratch = &mut lane_scratch[i];
            if policy.mode() == PolicyMode::Dedicated {
                reports[i] = Some(engine.run_with_scratch(policy.as_mut(), scratch));
                execs.push(None);
            } else {
                let mut exec = TransientExec::new(engine, scratch);
                exec.phase1(policy.as_mut(), scratch);
                execs.push(Some(exec));
            }
        }

        // The barrier: gather every campaign's prediction inputs into the
        // SoA lanes, one kernel pass, scatter back.
        lanes.clear();
        let handles: Vec<Option<usize>> = execs
            .iter()
            .enumerate()
            .map(|(i, exec)| {
                exec.as_ref().map(|exec| {
                    lanes.gather(lane_scratch[i].arena.slots(), exec.theta(), exec.max_steps)
                })
            })
            .collect();
        lanes.evaluate();

        // Selection, phase 2 and report per campaign.
        for (i, exec) in execs.into_iter().enumerate() {
            let Some(exec) = exec else { continue };
            let handle = handles[i].expect("transient campaigns were gathered");
            let predicted = lanes.scatter(handle);
            let truth = resolved[i].2.as_ref().clone();
            reports[i] = Some(exec.finish(
                policies[i].as_mut(),
                &mut lane_scratch[i],
                predicted,
                Some(truth),
            ));
        }

        let (invocations, slots, jobs) = lanes.flush_counters();
        runner.counters.kernel_invocations.fetch_add(invocations, Ordering::Relaxed);
        runner.counters.lane_slots.fetch_add(slots, Ordering::Relaxed);
        runner.counters.lane_jobs.fetch_add(jobs, Ordering::Relaxed);
        reports.into_iter().map(|r| r.expect("every cohort campaign reports")).collect()
    }

    /// Index of the memoized estimator for `spec`, building it on first
    /// use. Resolution mirrors [`CampaignRequest::run_serial`] exactly:
    /// learned families train for this session's scenario (through the
    /// shared predictor tier — a pure memo of `train_for_scenario`),
    /// ground-truth specs are built from the pool. The oracle additionally
    /// routes its trace lookups through the session spine, which answers
    /// bit-identically to the linear scan.
    fn estimator_index(&mut self, spec: EstimatorSpec) -> usize {
        if let Some(i) = self.estimators.iter().position(|(s, _)| *s == spec) {
            return i;
        }
        let built = match PredictorKind::from_spec(&spec) {
            Some(kind) => {
                let set = self.runner.predictors.get(kind, self.scenario, &self.pool);
                if self.runner.soa {
                    GroupEstimator::Probed(ProbeCachedPredictors::new(set))
                } else {
                    GroupEstimator::Learned(set)
                }
            }
            None => match spec {
                EstimatorSpec::Oracle { confidence } => GroupEstimator::Oracle(
                    OracleEstimator::new(self.pool.clone(), confidence)
                        .with_spine(Arc::clone(&self.spine)),
                ),
                EstimatorSpec::Constant { p } => {
                    GroupEstimator::Constant(ConstantEstimator::new(p))
                }
                _ => unreachable!("learned specs resolve through PredictorKind::from_spec"),
            },
        };
        self.estimators.push((spec, built));
        self.estimators.len() - 1
    }

    /// The memoized ground-truth finals for `(workload, seed)`, keyed by
    /// the workload's memo index. [`ground_truth_finals_with_cache`] is a
    /// pure function of the key, so sharing one copy across the cohort
    /// path's reports is bit-identical to each campaign deriving its own.
    ///
    /// [`ground_truth_finals_with_cache`]: spottune_mlsim::runner::ground_truth_finals_with_cache
    fn truth_for(&mut self, spe_idx: usize, req: &CampaignRequest) -> Arc<Vec<f64>> {
        if let Some(truth) = self.truth_memos.get(&(spe_idx, req.seed)) {
            return Arc::clone(truth);
        }
        let truth = Arc::new(spottune_mlsim::runner::ground_truth_finals_with_cache(
            &req.workload,
            req.seed,
            &self.runner.curves,
        ));
        self.truth_memos.insert((spe_idx, req.seed), Arc::clone(&truth));
        truth
    }

    /// Index of the memoized SPE table for `workload`, deriving it on
    /// first use ([`compute_spe_means`] is a pure function of
    /// `(pool, workload)`, so sharing the table is bit-identical to each
    /// engine deriving its own).
    fn spe_index(&mut self, workload: &Workload) -> usize {
        if let Some(i) = self.spe_memos.iter().position(|(w, _)| w == workload) {
            return i;
        }
        let table = Arc::new(compute_spe_means(&self.pool, workload));
        self.spe_memos.push((workload.clone(), table));
        self.spe_memos.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SingleSpotKind;
    use crate::campaign::Approach;
    use spottune_mlsim::Algorithm;

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        Workload::custom(Algorithm::LoR, 30, base.hp_grid()[..2].to_vec())
    }

    fn request(id: u64, approach: Approach, scenario: MarketScenario, seed: u64) -> CampaignRequest {
        CampaignRequest {
            id,
            approach,
            workload: tiny_workload(),
            scenario,
            seed,
            estimator: EstimatorSpec::default(),
        }
    }

    #[test]
    fn run_many_matches_serial_and_preserves_order() {
        let near = MarketScenario::from_days(1, 3);
        let far = MarketScenario::from_days(1, 4);
        // Interleave two scenarios so grouping must scatter back by index.
        let reqs: Vec<CampaignRequest> = (0..6)
            .map(|i| {
                let scenario = if i % 2 == 0 { near } else { far };
                request(i, Approach::SpotTune { theta: 0.7 }, scenario, 10 + i)
            })
            .collect();
        let runner = BatchRunner::new();
        let batched = runner.run_many(&reqs);
        let curve_cache = CurveCache::new();
        for (req, got) in reqs.iter().zip(&batched) {
            let want = req.run_serial(&req.scenario.build(), &curve_cache);
            assert_eq!(*got, want, "request {} must match its serial report", req.id);
        }
        let stats = runner.stats();
        assert_eq!(stats.campaigns, 6);
        assert_eq!(stats.groups, 2);
        assert_eq!(stats.pool_cache.misses, 2, "one pool build per scenario");
        assert_eq!(stats.spine_cache.misses, 2, "one spine build per scenario");
        assert!(stats.spine_queries > 0, "campaigns must route through the spine");
    }

    #[test]
    fn session_memoizes_estimators_and_spe_tables() {
        let scenario = MarketScenario::from_days(1, 5);
        let runner = BatchRunner::new();
        let mut session = runner.session(scenario);
        let specs =
            [EstimatorSpec::default(), EstimatorSpec::Constant { p: 0.2 }, EstimatorSpec::default()];
        for (i, spec) in specs.into_iter().enumerate() {
            let req = CampaignRequest {
                estimator: spec,
                ..request(i as u64, Approach::SpotTune { theta: 0.7 }, scenario, 9)
            };
            session.run_one(&req);
        }
        assert_eq!(session.estimators.len(), 2, "equal specs share one estimator");
        assert_eq!(session.spe_memos.len(), 1, "equal workloads share one SPE table");
    }

    #[test]
    fn dedicated_policies_run_through_the_batched_path() {
        let scenario = MarketScenario::from_days(1, 6);
        let reqs = vec![
            request(0, Approach::OnDemand(SingleSpotKind::Cheapest), scenario, 2),
            request(1, Approach::SingleSpot(SingleSpotKind::Fastest), scenario, 2),
        ];
        let batched = Campaign::run_many(&reqs);
        let curve_cache = CurveCache::new();
        let pool = scenario.build();
        for (req, got) in reqs.iter().zip(&batched) {
            assert_eq!(*got, req.run_serial(&pool, &curve_cache));
        }
    }
}
