//! Wire format for the campaign server: hand-rolled JSON for
//! [`CampaignRequest`]/[`CampaignResponse`].
//!
//! The workspace's `serde` is an offline no-op stand-in (no registry
//! access), so the request/response types carry their derives as
//! documentation only. This module provides the actual transport encoding
//! the server's persistence/IPC follow-on needs: a small JSON value model,
//! a recursive-descent parser, and explicit encoders/decoders for the two
//! wire types.
//!
//! Design rules:
//!
//! * **Policy by name** — approaches serialize as
//!   `{"policy": "<registry name>", ...}` using the same identifiers as
//!   [`Approach::registered_policies`], so wire clients, the
//!   `run_campaigns --policy` flag and the CI policy matrix all speak one
//!   vocabulary.
//! * **Estimator by name** — revocation estimators serialize as
//!   `{"kind": "<registry name>", ...}` using the identifiers of
//!   [`EstimatorSpec::registered_estimators`]; a request with no
//!   `estimator` field decodes to the default `oracle(0.9)` spec, so
//!   pre-registry encodings replay bit-identically.
//! * **Forward compatibility** — decoders read the fields they know and
//!   *tolerate unknown fields*, so a newer client can attach metadata
//!   without breaking an older server.
//! * **Exactness** — `u64` fields round-trip as JSON integers (never
//!   through `f64`), and finite `f64` fields print their shortest
//!   round-trip representation, so `decode(encode(x)) == x` bit-for-bit.
//!   JSON has no NaN/∞: non-finite floats (never produced by valid
//!   campaigns) encode as `null`, keeping the output parseable and making
//!   the decode fail loudly on the offending field.

use crate::baseline::SingleSpotKind;
use crate::campaign::{Approach, CampaignRequest, CampaignResponse, DEFAULT_HYBRID_STRIKES};
use crate::report::HptReport;
use spottune_market::{EstimatorSpec, MarketScenario, SimDur};
use spottune_mlsim::{Algorithm, HpSetting, HpValue, Workload};
use std::fmt;

/// Error produced by the wire decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }

    /// Public constructor for callers that detect protocol violations the
    /// decoders can't see (e.g. a well-formed frame of the wrong kind).
    pub fn from_message(msg: impl Into<String>) -> Self {
        WireError::new(msg)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value. Integers keep their exact width instead of passing
/// through `f64` (u64 seeds/ids would lose precision past 2⁵³).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Member lookup; unknown keys in the object are simply never asked for,
    /// which is what makes the decoders forward-compatible.
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn require<'a>(&'a self, key: &str) -> Result<&'a Json> {
        self.get(key)
            .ok_or_else(|| WireError::new(format!("missing field {key:?}")))
    }

    fn as_u64(&self) -> Result<u64> {
        match *self {
            Json::UInt(v) => Ok(v),
            Json::Int(v) if v >= 0 => Ok(v as u64),
            _ => Err(WireError::new(format!("expected unsigned integer, got {}", self.type_name()))),
        }
    }

    fn as_f64(&self) -> Result<f64> {
        match *self {
            Json::Float(v) => Ok(v),
            Json::UInt(v) => Ok(v as f64),
            Json::Int(v) => Ok(v as f64),
            _ => Err(WireError::new(format!("expected number, got {}", self.type_name()))),
        }
    }

    fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(WireError::new(format!("expected string, got {}", self.type_name()))),
        }
    }

    fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(WireError::new(format!("expected array, got {}", self.type_name()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Int(n) => out.push_str(&n.to_string()),
        // {:?} prints the shortest representation that round-trips. JSON
        // has no NaN/inf; encode them as null so the output stays valid
        // JSON and decoders fail loudly ("expected number, got null")
        // instead of choking on malformed text.
        Json::Float(x) if !x.is_finite() => out.push_str("null"),
        Json::Float(x) => out.push_str(&format!("{x:?}")),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_json(out, v);
            }
            out.push('}');
        }
    }
}

fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_json(&mut out, v);
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> WireError {
        WireError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if float {
            // `"1e999".parse::<f64>()` yields Ok(inf); reject it here so
            // the no-non-finite contract holds on the decode side too.
            match text.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(Json::Float(x)),
                Ok(_) => Err(self.err("number overflows f64")),
                Err(_) => Err(self.err("malformed number")),
            }
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("malformed integer"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("malformed integer"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&code) {
                                // RFC 8259 surrogate pair: a high surrogate
                                // must be followed by an escaped low one.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = utf8_len(b);
                    let end = self.pos - 1 + len;
                    let chunk = self
                        .bytes
                        .get(self.pos - 1..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("malformed utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ascii \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse(text: &str) -> Result<Json> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Domain encoders/decoders
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn kind_name(kind: SingleSpotKind) -> &'static str {
    match kind {
        SingleSpotKind::Cheapest => "cheapest",
        SingleSpotKind::Fastest => "fastest",
    }
}

fn kind_from_name(name: &str) -> Result<SingleSpotKind> {
    match name {
        "cheapest" => Ok(SingleSpotKind::Cheapest),
        "fastest" => Ok(SingleSpotKind::Fastest),
        other => Err(WireError::new(format!("unknown instance kind {other:?}"))),
    }
}

fn approach_to_json(a: &Approach) -> Json {
    let mut members = vec![("policy", Json::Str(a.policy_name().to_string()))];
    match *a {
        Approach::SpotTune { theta } => members.push(("theta", Json::Float(theta))),
        Approach::SingleSpot(_) => {}
        Approach::OnDemand(kind) => {
            members.push(("kind", Json::Str(kind_name(kind).to_string())));
        }
        Approach::Hybrid { theta, max_revocations } => {
            members.push(("theta", Json::Float(theta)));
            members.push(("max_revocations", Json::UInt(u64::from(max_revocations))));
        }
        Approach::BidAware { theta } => members.push(("theta", Json::Float(theta))),
        Approach::MigrationAware { theta } => members.push(("theta", Json::Float(theta))),
    }
    obj(members)
}

fn approach_from_json(v: &Json) -> Result<Approach> {
    let policy = v.require("policy")?.as_str()?;
    let theta = || -> Result<f64> { v.require("theta")?.as_f64() };
    match policy {
        "spottune" => Ok(Approach::SpotTune { theta: theta()? }),
        "single-spot-cheapest" => Ok(Approach::SingleSpot(SingleSpotKind::Cheapest)),
        "single-spot-fastest" => Ok(Approach::SingleSpot(SingleSpotKind::Fastest)),
        "on-demand" => {
            let kind = match v.get("kind") {
                Some(k) => kind_from_name(k.as_str()?)?,
                None => SingleSpotKind::Cheapest,
            };
            Ok(Approach::OnDemand(kind))
        }
        "hybrid" => {
            let max_revocations = match v.get("max_revocations") {
                Some(n) => u32::try_from(n.as_u64()?)
                    .map_err(|_| WireError::new("max_revocations out of range"))?,
                None => DEFAULT_HYBRID_STRIKES,
            };
            Ok(Approach::Hybrid { theta: theta()?, max_revocations })
        }
        "bid-aware" => Ok(Approach::BidAware { theta: theta()? }),
        "migration-aware" => Ok(Approach::MigrationAware { theta: theta()? }),
        other => Err(WireError::new(format!(
            "unknown policy {other:?} (registered: {})",
            Approach::registered_policies().join(", ")
        ))),
    }
}

fn estimator_to_json(spec: &EstimatorSpec) -> Json {
    let mut members = vec![("kind", Json::Str(spec.kind_name().to_string()))];
    match *spec {
        EstimatorSpec::Oracle { confidence } => {
            members.push(("confidence", Json::Float(confidence)));
        }
        EstimatorSpec::Constant { p } => members.push(("p", Json::Float(p))),
        EstimatorSpec::RevPred | EstimatorSpec::Tributary | EstimatorSpec::Logistic => {}
    }
    obj(members)
}

fn estimator_from_json(v: &Json) -> Result<EstimatorSpec> {
    let kind = v.require("kind")?.as_str()?;
    let spec = match kind {
        // A bare `{"kind":"oracle"}` means the default confidence, mirroring
        // the textual registry grammar (`oracle` vs `oracle(0.8)`).
        "oracle" => match v.get("confidence") {
            Some(c) => EstimatorSpec::Oracle { confidence: c.as_f64()? },
            None => EstimatorSpec::default(),
        },
        "constant" => EstimatorSpec::Constant { p: v.require("p")?.as_f64()? },
        "revpred" => EstimatorSpec::RevPred,
        "tributary" => EstimatorSpec::Tributary,
        "logistic" => EstimatorSpec::Logistic,
        other => {
            return Err(WireError::new(format!(
                "unknown estimator {other:?} (registered: {})",
                EstimatorSpec::registered_estimators().join(", ")
            )))
        }
    };
    spec.validate().map_err(WireError::new)?;
    Ok(spec)
}

fn hp_value_to_json(v: &HpValue) -> Json {
    match v {
        HpValue::Int(i) => obj(vec![("int", Json::Int(*i))]),
        HpValue::Float(f) => obj(vec![("float", Json::Float(*f))]),
        HpValue::Text(s) => obj(vec![("text", Json::Str(s.clone()))]),
    }
}

fn hp_value_from_json(v: &Json) -> Result<HpValue> {
    if let Some(i) = v.get("int") {
        let raw = match *i {
            Json::Int(x) => x,
            Json::UInt(x) => i64::try_from(x).map_err(|_| WireError::new("int out of range"))?,
            _ => return Err(WireError::new("hp int must be an integer")),
        };
        return Ok(HpValue::Int(raw));
    }
    if let Some(f) = v.get("float") {
        return Ok(HpValue::Float(f.as_f64()?));
    }
    if let Some(s) = v.get("text") {
        return Ok(HpValue::Text(s.as_str()?.to_string()));
    }
    Err(WireError::new("hp value needs one of int/float/text"))
}

fn hp_setting_to_json(hp: &HpSetting) -> Json {
    Json::Arr(
        hp.entries()
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), hp_value_to_json(v)]))
            .collect(),
    )
}

fn hp_setting_from_json(v: &Json) -> Result<HpSetting> {
    let mut hp = HpSetting::new();
    for entry in v.as_arr()? {
        let pair = entry.as_arr()?;
        if pair.len() != 2 {
            return Err(WireError::new("hp entry must be a [key, value] pair"));
        }
        hp = hp.with(pair[0].as_str()?, hp_value_from_json(&pair[1])?);
    }
    Ok(hp)
}

fn workload_to_json(w: &Workload) -> Json {
    obj(vec![
        ("algorithm", Json::Str(w.algorithm().name().to_string())),
        ("max_trial_steps", Json::UInt(w.max_trial_steps())),
        ("grid", Json::Arr(w.hp_grid().iter().map(hp_setting_to_json).collect())),
    ])
}

fn workload_from_json(v: &Json) -> Result<Workload> {
    let name = v.require("algorithm")?.as_str()?;
    let algorithm = Algorithm::all()
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| WireError::new(format!("unknown algorithm {name:?}")))?;
    let max_trial_steps = v.require("max_trial_steps")?.as_u64()?;
    let grid = v
        .require("grid")?
        .as_arr()?
        .iter()
        .map(hp_setting_from_json)
        .collect::<Result<Vec<_>>>()?;
    if grid.is_empty() {
        return Err(WireError::new("workload grid must not be empty"));
    }
    Ok(Workload::custom(algorithm, max_trial_steps, grid))
}

fn scenario_to_json(s: &MarketScenario) -> Json {
    obj(vec![("trace_mins", Json::UInt(s.trace_mins)), ("seed", Json::UInt(s.seed))])
}

fn scenario_from_json(v: &Json) -> Result<MarketScenario> {
    Ok(MarketScenario {
        trace_mins: v.require("trace_mins")?.as_u64()?,
        seed: v.require("seed")?.as_u64()?,
    })
}

fn f64_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Float(x)).collect())
}

fn report_to_json(r: &HptReport) -> Json {
    obj(vec![
        ("approach", Json::Str(r.approach.clone())),
        ("workload", Json::Str(r.workload.clone())),
        ("theta", Json::Float(r.theta)),
        ("cost", Json::Float(r.cost)),
        ("refunded", Json::Float(r.refunded)),
        ("gross", Json::Float(r.gross)),
        ("jct_secs", Json::UInt(r.jct.as_secs())),
        ("cost_with_continuation", Json::Float(r.cost_with_continuation)),
        ("jct_with_continuation_secs", Json::UInt(r.jct_with_continuation.as_secs())),
        ("train_time_secs", Json::UInt(r.train_time.as_secs())),
        ("overhead_time_secs", Json::UInt(r.overhead_time.as_secs())),
        ("free_steps", Json::UInt(r.free_steps)),
        ("charged_steps", Json::UInt(r.charged_steps)),
        ("predicted_finals", f64_arr(&r.predicted_finals)),
        ("true_finals", f64_arr(&r.true_finals)),
        (
            "selected",
            Json::Arr(r.selected.iter().map(|&i| Json::UInt(i as u64)).collect()),
        ),
        ("deployments", Json::UInt(r.deployments)),
        ("revocations", Json::UInt(r.revocations)),
        ("lost_steps", Json::UInt(r.lost_steps)),
        ("migrations", Json::UInt(r.migrations)),
    ])
}

fn report_from_json(v: &Json) -> Result<HptReport> {
    let floats = |key: &str| -> Result<Vec<f64>> {
        v.require(key)?.as_arr()?.iter().map(Json::as_f64).collect()
    };
    Ok(HptReport {
        approach: v.require("approach")?.as_str()?.to_string(),
        workload: v.require("workload")?.as_str()?.to_string(),
        theta: v.require("theta")?.as_f64()?,
        cost: v.require("cost")?.as_f64()?,
        refunded: v.require("refunded")?.as_f64()?,
        gross: v.require("gross")?.as_f64()?,
        jct: SimDur::from_secs(v.require("jct_secs")?.as_u64()?),
        cost_with_continuation: v.require("cost_with_continuation")?.as_f64()?,
        jct_with_continuation: SimDur::from_secs(
            v.require("jct_with_continuation_secs")?.as_u64()?,
        ),
        train_time: SimDur::from_secs(v.require("train_time_secs")?.as_u64()?),
        overhead_time: SimDur::from_secs(v.require("overhead_time_secs")?.as_u64()?),
        free_steps: v.require("free_steps")?.as_u64()?,
        charged_steps: v.require("charged_steps")?.as_u64()?,
        predicted_finals: floats("predicted_finals")?,
        true_finals: floats("true_finals")?,
        selected: v
            .require("selected")?
            .as_arr()?
            .iter()
            .map(|i| i.as_u64().map(|n| n as usize))
            .collect::<Result<Vec<_>>>()?,
        deployments: v.require("deployments")?.as_u64()?,
        revocations: v.require("revocations")?.as_u64()?,
        // Absent in reports encoded before the grace-window model: default
        // to zero so old payloads keep decoding.
        lost_steps: match v.get("lost_steps") {
            Some(n) => n.as_u64()?,
            None => 0,
        },
        migrations: match v.get("migrations") {
            Some(n) => n.as_u64()?,
            None => 0,
        },
    })
}

fn request_members(request: &CampaignRequest) -> Vec<(&'static str, Json)> {
    vec![
        ("id", Json::UInt(request.id)),
        ("approach", approach_to_json(&request.approach)),
        ("workload", workload_to_json(&request.workload)),
        ("scenario", scenario_to_json(&request.scenario)),
        ("seed", Json::UInt(request.seed)),
        ("estimator", estimator_to_json(&request.estimator)),
    ]
}

fn request_from_json(v: &Json) -> Result<CampaignRequest> {
    Ok(CampaignRequest {
        id: v.require("id")?.as_u64()?,
        approach: approach_from_json(v.require("approach")?)?,
        workload: workload_from_json(v.require("workload")?)?,
        scenario: scenario_from_json(v.require("scenario")?)?,
        seed: v.require("seed")?.as_u64()?,
        // Requests encoded before the estimator registry carry no spec;
        // the default reproduces their behaviour bit-identically.
        estimator: match v.get("estimator") {
            Some(spec) => estimator_from_json(spec)?,
            None => EstimatorSpec::default(),
        },
    })
}

/// Encodes a [`CampaignRequest`] as one JSON object.
pub fn encode_request(request: &CampaignRequest) -> String {
    to_string(&obj(request_members(request)))
}

/// Decodes a [`CampaignRequest`], tolerating unknown fields at every level.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, missing required fields, or an
/// unregistered policy name.
pub fn decode_request(text: &str) -> Result<CampaignRequest> {
    request_from_json(&parse(text)?)
}

/// Encodes a [`CampaignResponse`] as one JSON object.
pub fn encode_response(response: &CampaignResponse) -> String {
    to_string(&obj(vec![
        ("id", Json::UInt(response.id)),
        ("report", report_to_json(&response.report)),
    ]))
}

/// Decodes a [`CampaignResponse`], tolerating unknown fields.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON or missing required fields.
pub fn decode_response(text: &str) -> Result<CampaignResponse> {
    let v = parse(text)?;
    Ok(CampaignResponse {
        id: v.require("id")?.as_u64()?,
        report: report_from_json(v.require("report")?)?,
    })
}

// ---------------------------------------------------------------------------
// Connection frames (the newline-delimited TCP protocol)
// ---------------------------------------------------------------------------

/// The error-frame kinds a server may put on the wire. The names are a
/// registry (like [`Approach::registered_policies`]): clients match on
/// them, the docs list them, and spotlint's coverage check requires every
/// kind to be exercised by the TCP test suites.
///
/// To add a kind: extend this enum, its `name`/`from_name` mappings and
/// [`registered_error_kinds`], then add a test that puts the new frame on
/// the wire (see CONTRIBUTING.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The bounded request queue is at capacity; retry after backoff.
    Overloaded,
    /// The connection exceeded its token-bucket admission rate.
    Throttled,
    /// The request's deadline passed before a worker picked it up; the
    /// campaign was cancelled without running.
    DeadlineExceeded,
    /// The frame was not a decodable request (garbage, truncated JSON,
    /// unknown policy/estimator).
    Malformed,
    /// The request decoded but failed semantic validation.
    Rejected,
    /// The server is draining for shutdown and accepts no new work.
    Draining,
}

impl ErrorKind {
    /// The registry name carried on the wire.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Throttled => "throttled",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Malformed => "malformed",
            ErrorKind::Rejected => "rejected",
            ErrorKind::Draining => "draining",
        }
    }

    /// Inverse of [`ErrorKind::name`].
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        [
            ErrorKind::Overloaded,
            ErrorKind::Throttled,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Malformed,
            ErrorKind::Rejected,
            ErrorKind::Draining,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }

    /// Whether a client may usefully retry the same request later.
    /// Malformed/rejected frames are permanent (the request itself is
    /// bad); deadline-exceeded is a client-policy decision, reported as
    /// non-retryable so replays stay deterministic.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::Throttled | ErrorKind::Draining)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every wire error-frame kind, in registry order. The single source of
/// truth cross-checked by spotlint against the TCP test suites (rule R1).
pub fn registered_error_kinds() -> [&'static str; 6] {
    ["overloaded", "throttled", "deadline-exceeded", "malformed", "rejected", "draining"]
}

/// One error frame: the typed refusal a server sends instead of a
/// response. `id` is absent when the frame could not be attributed to a
/// request (e.g. garbage that never decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The offending request's id, when known.
    pub id: Option<u64>,
    /// Which registered kind this is.
    pub kind: ErrorKind,
    /// Human-readable detail (reason text; never needed for dispatch).
    pub message: String,
}

/// A frame a client sends to the server: one line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// A campaign to run, with an optional queue deadline in
    /// milliseconds from receipt.
    Request {
        /// The campaign request itself.
        request: CampaignRequest,
        /// Milliseconds the request may wait in the queue before it is
        /// cancelled with a deadline-exceeded frame.
        deadline_ms: Option<u64>,
    },
    /// `{"stats":true}`: asks for a stats frame.
    Stats,
    /// `{"shutdown":true}`: asks the server to drain gracefully.
    Shutdown,
}

/// A frame a server sends to a client: one line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// A completed campaign.
    Response(CampaignResponse),
    /// A typed refusal.
    Error(ErrorFrame),
    /// Flattened counter snapshot answering a stats request.
    Stats(Vec<(String, u64)>),
}

/// Encodes a request frame, optionally carrying a queue deadline.
/// Without a deadline this is byte-identical to [`encode_request`]
/// (decoders tolerate the extra field either way).
pub fn encode_request_frame(request: &CampaignRequest, deadline_ms: Option<u64>) -> String {
    let mut members = request_members(request);
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms", Json::UInt(ms)));
    }
    to_string(&obj(members))
}

/// Encodes the `{"stats":true}` admin frame.
pub fn encode_stats_request() -> String {
    to_string(&obj(vec![("stats", Json::Bool(true))]))
}

/// Encodes the `{"shutdown":true}` admin frame.
pub fn encode_shutdown_request() -> String {
    to_string(&obj(vec![("shutdown", Json::Bool(true))]))
}

/// Decodes one client line into a [`ClientFrame`].
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON or an undecodable request —
/// the server answers those with a `malformed` error frame.
pub fn decode_client_frame(text: &str) -> Result<ClientFrame> {
    let v = parse(text)?;
    if let Some(flag) = v.get("stats") {
        if *flag == Json::Bool(true) {
            return Ok(ClientFrame::Stats);
        }
    }
    if let Some(flag) = v.get("shutdown") {
        if *flag == Json::Bool(true) {
            return Ok(ClientFrame::Shutdown);
        }
    }
    let deadline_ms = match v.get("deadline_ms") {
        Some(ms) => Some(ms.as_u64()?),
        None => None,
    };
    Ok(ClientFrame::Request { request: request_from_json(&v)?, deadline_ms })
}

/// Encodes an error frame.
pub fn encode_error_frame(frame: &ErrorFrame) -> String {
    let mut members = Vec::new();
    if let Some(id) = frame.id {
        members.push(("id", Json::UInt(id)));
    }
    members.push((
        "error",
        obj(vec![
            ("kind", Json::Str(frame.kind.name().to_string())),
            ("message", Json::Str(frame.message.clone())),
        ]),
    ));
    to_string(&obj(members))
}

/// Encodes a stats frame from flattened `(name, value)` counters.
pub fn encode_stats_frame(fields: &[(&str, u64)]) -> String {
    let members = fields.iter().map(|&(k, v)| (k, Json::UInt(v))).collect();
    to_string(&obj(vec![("stats", obj(members))]))
}

/// Decodes one server line into a [`ServerFrame`]: an error frame if it
/// carries `error`, a stats frame if it carries a `stats` object, and a
/// campaign response otherwise.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, an unregistered error kind or
/// a frame that is none of the three shapes.
pub fn decode_server_frame(text: &str) -> Result<ServerFrame> {
    let v = parse(text)?;
    if let Some(e) = v.get("error") {
        let kind_name = e.require("kind")?.as_str()?;
        let kind = ErrorKind::from_name(kind_name).ok_or_else(|| {
            WireError::new(format!(
                "unknown error kind {kind_name:?} (registered: {})",
                registered_error_kinds().join(", ")
            ))
        })?;
        let message = match e.get("message") {
            Some(m) => m.as_str()?.to_string(),
            None => String::new(),
        };
        let id = match v.get("id") {
            Some(id) => Some(id.as_u64()?),
            None => None,
        };
        return Ok(ServerFrame::Error(ErrorFrame { id, kind, message }));
    }
    if let Some(stats) = v.get("stats") {
        let Json::Obj(members) = stats else {
            return Err(WireError::new(format!(
                "expected stats object, got {}",
                stats.type_name()
            )));
        };
        let fields = members
            .iter()
            .map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
            .collect::<Result<Vec<_>>>()?;
        return Ok(ServerFrame::Stats(fields));
    }
    Ok(ServerFrame::Response(CampaignResponse {
        id: v.require("id")?.as_u64()?,
        report: report_from_json(v.require("report")?)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_mlsim::Algorithm;

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::Svm); // exercises text HPs
        Workload::custom(Algorithm::Svm, 25, base.hp_grid()[..3].to_vec())
    }

    fn request(approach: Approach) -> CampaignRequest {
        CampaignRequest {
            id: 7,
            approach,
            workload: tiny_workload(),
            scenario: MarketScenario::from_days(2, 13),
            seed: u64::MAX - 5, // exercises exact u64 round-tripping
            estimator: EstimatorSpec::default(),
        }
    }

    #[test]
    fn request_round_trips_every_registered_policy() {
        for name in Approach::registered_policies() {
            let approach = Approach::from_policy_name(name, 0.65).expect("registered");
            let req = request(approach);
            let text = encode_request(&req);
            assert!(text.contains(&format!("\"policy\":\"{name}\"")), "policy name on the wire");
            let back = decode_request(&text).expect("round trip");
            assert_eq!(back, req, "{name}: decode(encode(x)) must equal x");
        }
    }

    #[test]
    fn response_round_trips_bit_identically() {
        let req = request(Approach::Hybrid { theta: 0.7, max_revocations: 5 });
        let pool = req.scenario.build();
        let report = req.campaign().run(&pool);
        let resp = CampaignResponse { id: req.id, report };
        let back = decode_response(&encode_response(&resp)).expect("round trip");
        assert_eq!(back, resp);
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let req = request(Approach::BidAware { theta: 0.8 });
        let text = encode_request(&req);
        // A newer client appends metadata at the top level and inside
        // nested objects; an older decoder must ignore all of it.
        let padded = text
            .replacen('{', "{\"client_version\":\"2.3\",\"priority\":9,", 1)
            .replacen(
                "\"policy\"",
                "\"comment\":\"from the fleet scheduler\",\"policy\"",
                1,
            );
        let back = decode_request(&padded).expect("unknown fields tolerated");
        assert_eq!(back, req);
    }

    #[test]
    fn estimator_specs_round_trip_exactly() {
        // Every registered kind, including floats whose shortest decimal
        // form must survive bit-for-bit, and a u64-exact seed alongside.
        let specs = [
            EstimatorSpec::default(),
            EstimatorSpec::Oracle { confidence: 0.8250000000000001 },
            EstimatorSpec::Constant { p: 0.1 + 0.2 }, // 0.30000000000000004
            EstimatorSpec::Constant { p: 0.0 },
            EstimatorSpec::RevPred,
            EstimatorSpec::Tributary,
            EstimatorSpec::Logistic,
        ];
        for spec in specs {
            let mut req = request(Approach::SpotTune { theta: 0.7 });
            req.estimator = spec;
            let text = encode_request(&req);
            assert!(
                text.contains(&format!("\"kind\":\"{}\"", spec.kind_name())),
                "estimator kind on the wire: {text}"
            );
            let back = decode_request(&text).expect("round trip");
            assert_eq!(back, req, "{spec}: decode(encode(x)) must equal x");
            assert_eq!(back.seed, u64::MAX - 5, "u64 exactness unaffected");
        }
    }

    #[test]
    fn missing_estimator_field_decodes_to_the_default_spec() {
        // A pre-registry client omits the field entirely.
        let req = request(Approach::SpotTune { theta: 0.7 });
        let text = encode_request(&req);
        let start = text.find(",\"estimator\"").expect("estimator on the wire");
        let legacy = format!("{}{}", &text[..start], "}");
        let back = decode_request(&legacy).expect("legacy request decodes");
        assert_eq!(back.estimator, EstimatorSpec::default());
        assert_eq!(back, req);
    }

    #[test]
    fn estimator_tolerates_unknown_fields_and_bare_oracle() {
        let req = request(Approach::SpotTune { theta: 0.7 });
        let text = encode_request(&req).replace(
            "{\"kind\":\"oracle\"",
            "{\"trained_at\":\"2026-07-29\",\"kind\":\"oracle\"",
        );
        assert_eq!(decode_request(&text).expect("unknown fields tolerated"), req);
        // `{"kind":"oracle"}` with no confidence means the default, like
        // the bare `oracle` registry string.
        let bare = encode_request(&req).replace(
            "{\"kind\":\"oracle\",\"confidence\":0.9}",
            "{\"kind\":\"oracle\"}",
        );
        assert_eq!(decode_request(&bare).expect("bare oracle"), req);
    }

    #[test]
    fn malformed_estimator_specs_are_rejected() {
        let text = encode_request(&request(Approach::SpotTune { theta: 0.7 }));
        // Unknown kind: rejected with the registry listing.
        let unknown = text.replace("\"kind\":\"oracle\"", "\"kind\":\"psychic\"");
        let err = decode_request(&unknown).expect_err("unknown estimator");
        let msg = err.to_string();
        assert!(msg.contains("psychic"), "{msg}");
        assert!(msg.contains("tributary"), "listing of registered estimators: {msg}");
        // Out-of-range arguments: rejected at the boundary, not mid-campaign.
        for (from, to, needle) in [
            ("\"confidence\":0.9", "\"confidence\":1.5", "confidence"),
            ("\"confidence\":0.9", "\"confidence\":0.2", "confidence"),
            ("\"kind\":\"oracle\",\"confidence\":0.9", "\"kind\":\"constant\",\"p\":-0.1", "probability"),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "replacement must apply");
            let err = decode_request(&bad).expect_err("malformed spec");
            assert!(err.to_string().contains(needle), "{err}");
        }
        // A constant spec needs its argument.
        let missing =
            text.replace("\"kind\":\"oracle\",\"confidence\":0.9", "\"kind\":\"constant\"");
        let err = decode_request(&missing).expect_err("constant without p");
        assert!(err.to_string().contains("p"), "{err}");
    }

    #[test]
    fn decoded_but_semantically_malformed_requests_fail_validate() {
        // The untrusted-input contract (spotlint rule P1): a structurally
        // well-formed request with nonsense values decodes fine — the wire
        // layer checks shape, not semantics — and is then caught by
        // `CampaignRequest::validate` at the server boundary instead of
        // panicking a worker mid-campaign.
        let text = encode_request(&request(Approach::SpotTune { theta: 0.7 }));
        for (from, to, needle) in [
            ("\"theta\":0.7", "\"theta\":2.5", "theta"),
            ("\"theta\":0.7", "\"theta\":-1", "theta"),
            ("\"trace_mins\":2880", "\"trace_mins\":0", "scenario"),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "replacement must apply: {from}");
            let decoded = decode_request(&bad).expect("structurally valid");
            let err = decoded.validate().expect_err("semantically malformed");
            assert!(err.contains(needle), "{err}");
        }
        // The unmodified request passes.
        decode_request(&text).expect("valid").validate().expect("valid request");
    }

    #[test]
    fn unknown_policy_is_rejected_with_a_listing() {
        let text = encode_request(&request(Approach::SpotTune { theta: 0.7 }))
            .replace("\"policy\":\"spottune\"", "\"policy\":\"warp-drive\"");
        let err = decode_request(&text).expect_err("unknown policy");
        let msg = err.to_string();
        assert!(msg.contains("warp-drive"), "{msg}");
        assert!(msg.contains("bid-aware"), "listing of registered policies: {msg}");
    }

    #[test]
    fn non_finite_floats_stay_valid_json_and_fail_decode_loudly() {
        let req = request(Approach::SpotTune { theta: f64::INFINITY });
        let text = encode_request(&req);
        assert!(text.contains("\"theta\":null"), "{text}");
        // The output is still parseable JSON; the decode fails on the
        // field, not with a parser error.
        let err = decode_request(&text).expect_err("non-finite theta");
        assert!(err.to_string().contains("expected number"), "{err}");
        // Overflowing literals are rejected at parse time instead of
        // smuggling Infinity past the contract.
        let overflow = encode_request(&request(Approach::SpotTune { theta: 0.7 }))
            .replace("\"theta\":0.7", "\"theta\":1e999");
        let err = decode_request(&overflow).expect_err("overflowing literal");
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn missing_fields_and_garbage_fail_cleanly() {
        assert!(decode_request("{}").is_err());
        assert!(decode_request("not json").is_err());
        assert!(decode_request("{\"id\":1}  x").is_err());
        let req = request(Approach::SpotTune { theta: 0.7 });
        let text = encode_request(&req).replace("\"seed\"", "\"sead\"");
        let err = decode_request(&text).expect_err("missing seed");
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Standard encoders (e.g. Python's json with ensure_ascii) write
        // astral-plane characters as RFC 8259 surrogate pairs.
        let req = request(Approach::SpotTune { theta: 0.7 });
        let text = encode_request(&req)
            .replace("\"policy\":\"spottune\"", "\"note\":\"\\ud83d\\ude80\",\"policy\":\"spottune\"");
        let back = decode_request(&text).expect("surrogate pairs decode");
        assert_eq!(back, req);
        // Lone or malformed surrogates fail cleanly instead of corrupting.
        for bad in ["\"\\ud83d\"", "\"\\ud83dx\"", "\"\\ud83d\\u0041\""] {
            assert!(super::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn error_kinds_round_trip_through_the_registry() {
        assert_eq!(registered_error_kinds().len(), 6);
        for name in registered_error_kinds() {
            let kind = ErrorKind::from_name(name).expect("registered kind resolves");
            assert_eq!(kind.name(), name);
            let frame = ErrorFrame { id: Some(3), kind, message: format!("demo {name}") };
            let text = encode_error_frame(&frame);
            assert!(text.contains(&format!("\"kind\":\"{name}\"")), "{text}");
            match decode_server_frame(&text).expect("round trip") {
                ServerFrame::Error(back) => assert_eq!(back, frame),
                other => panic!("expected error frame, got {other:?}"),
            }
        }
        assert!(ErrorKind::from_name("psychic").is_none());
        // Retryability split: transient server states retry, bad requests
        // and expired deadlines do not.
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::Throttled.is_retryable());
        assert!(ErrorKind::Draining.is_retryable());
        assert!(!ErrorKind::Malformed.is_retryable());
        assert!(!ErrorKind::Rejected.is_retryable());
        assert!(!ErrorKind::DeadlineExceeded.is_retryable());
    }

    #[test]
    fn anonymous_error_frames_omit_the_id() {
        let frame =
            ErrorFrame { id: None, kind: ErrorKind::Malformed, message: "not json".to_string() };
        let text = encode_error_frame(&frame);
        assert!(!text.contains("\"id\""), "{text}");
        match decode_server_frame(&text).expect("round trip") {
            ServerFrame::Error(back) => assert_eq!(back, frame),
            other => panic!("expected error frame, got {other:?}"),
        }
        // Unregistered kinds fail with the registry listing.
        let bad = text.replace("malformed", "psychic");
        let err = decode_server_frame(&bad).expect_err("unknown kind");
        assert!(err.to_string().contains("throttled"), "{err}");
    }

    #[test]
    fn client_frames_decode_requests_admin_and_deadlines() {
        let req = request(Approach::SpotTune { theta: 0.7 });
        // A plain encoded request is a request frame without a deadline.
        match decode_client_frame(&encode_request(&req)).expect("request frame") {
            ClientFrame::Request { request, deadline_ms } => {
                assert_eq!(request, req);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("expected request frame, got {other:?}"),
        }
        // With a deadline the extra field rides along...
        let framed = encode_request_frame(&req, Some(1500));
        assert!(framed.contains("\"deadline_ms\":1500"), "{framed}");
        match decode_client_frame(&framed).expect("deadline frame") {
            ClientFrame::Request { deadline_ms, .. } => assert_eq!(deadline_ms, Some(1500)),
            other => panic!("expected request frame, got {other:?}"),
        }
        // ...and an old decoder that only knows requests tolerates it.
        assert_eq!(decode_request(&framed).expect("unknown field tolerated"), req);
        // Admin frames.
        assert_eq!(decode_client_frame(&encode_stats_request()), Ok(ClientFrame::Stats));
        assert_eq!(decode_client_frame(&encode_shutdown_request()), Ok(ClientFrame::Shutdown));
        // `{"stats":false}` is not an admin frame (and not a request either).
        assert!(decode_client_frame("{\"stats\":false}").is_err());
    }

    #[test]
    fn stats_frames_round_trip_flattened_counters() {
        let text = encode_stats_frame(&[("submitted", 12), ("queue_depth", 3), ("expired", 1)]);
        match decode_server_frame(&text).expect("stats frame") {
            ServerFrame::Stats(fields) => {
                assert_eq!(
                    fields,
                    vec![
                        ("submitted".to_string(), 12),
                        ("queue_depth".to_string(), 3),
                        ("expired".to_string(), 1),
                    ]
                );
            }
            other => panic!("expected stats frame, got {other:?}"),
        }
        // A response still decodes as a response through the frame path.
        let req = request(Approach::SpotTune { theta: 0.7 });
        let pool = req.scenario.build();
        let resp = CampaignResponse { id: req.id, report: req.campaign().run(&pool) };
        match decode_server_frame(&encode_response(&resp)).expect("response frame") {
            ServerFrame::Response(back) => assert_eq!(back, resp),
            other => panic!("expected response frame, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_survive() {
        let mut req = request(Approach::SpotTune { theta: 0.7 });
        // Workload names come from the algorithm, so exercise escapes via
        // the report side, which carries free-form labels.
        let pool = MarketScenario::from_days(1, 3).build();
        let mut report = req.campaign().run(&pool);
        report.approach = "weird \"label\"\\with\nescapes\tand π".to_string();
        req.id = 1;
        let resp = CampaignResponse { id: 1, report };
        let back = decode_response(&encode_response(&resp)).expect("round trip");
        assert_eq!(back, resp);
    }
}
