//! The pluggable provisioning-policy layer: one [`Engine`], many
//! strategies.
//!
//! SpotTune's contribution is a *policy* — fine-grained θ-split
//! exploration/exploitation over transient instances — and this module
//! separates that policy from the machinery it runs on. The
//! [`Engine`](crate::engine::Engine) owns everything mechanical (time
//! advance, cloud events, billing, checkpoint accounting, EarlyCurve
//! selection) and consults a [`ProvisionPolicy`] at its decision points;
//! each strategy from the paper or from related work is a small impl of
//! that trait instead of a parallel code path.
//!
//! # Writing a new policy
//!
//! A policy answers six questions, four of them about *one* job: *where
//! should this configuration run*
//! ([`ProvisionPolicy::choose_instance`]), *what do I learn from a
//! revocation* ([`ProvisionPolicy::on_revocation`]), *what do I learn from
//! training progress* ([`ProvisionPolicy::on_progress`]), and *is a
//! checkpoint worth it* ([`ProvisionPolicy::should_checkpoint`] — asked
//! both at the proactive one-hour recycle and on every revocation
//! notice). Two more hooks see the grace window itself: *how much of the
//! model should this window carry*
//! ([`ProvisionPolicy::plan_checkpoint`], answering with a
//! [`CheckpointPlan`]) and *how should a displaced batch be re-placed
//! jointly* ([`ProvisionPolicy::assign_migrations`]). Both have defaults
//! (`Full`, `None`) that reproduce the engine's historical behaviour
//! bit-for-bit, so a policy only overrides what it cares about —
//! [`MigrationAware`] (registry name `migration-aware`) overrides both,
//! sizing uploads to the window and spreading storm victims across
//! markets with a Kuhn–Munkres matcher. Everything else — notices,
//! refunds, restores, prediction, phase 2 — is engine business. A minimal
//! "always the cheapest spot instance, bid double the going rate" policy
//! that also abandons hopelessly short grace windows:
//!
//! ```
//! use spottune_core::engine::Engine;
//! use spottune_core::policy::{CheckpointPlan, DeployCtx, Placement, ProvisionPolicy};
//! use spottune_core::provision::InstChoice;
//! use spottune_core::SpotTuneConfig;
//! use rand::rngs::StdRng;
//!
//! #[derive(Debug)]
//! struct CheapestDoubleBid;
//!
//! impl ProvisionPolicy for CheapestDoubleBid {
//!     fn name(&self) -> String {
//!         "CheapestDoubleBid".to_string()
//!     }
//!
//!     fn choose_instance(&mut self, ctx: &DeployCtx<'_>, _rng: &mut StdRng) -> Placement {
//!         let market = ctx
//!             .pool
//!             .iter()
//!             .min_by(|a, b| {
//!                 a.price_at(ctx.t).partial_cmp(&b.price_at(ctx.t)).expect("finite")
//!             })
//!             .expect("non-empty pool");
//!         Placement::Spot(InstChoice {
//!             instance: market.instance().name().to_string(),
//!             max_price: 2.0 * market.price_at(ctx.t),
//!             p_revoke: 0.0,
//!             avg_price: market.avg_price_last_hour(ctx.t),
//!             expected_step_cost: 0.0,
//!         })
//!     }
//!
//!     fn plan_checkpoint(&self, _hp_index: usize, transferable_frac: f64) -> CheckpointPlan {
//!         // When a (fault-delayed) notice leaves time for less than half
//!         // the model, don't burn the window on a doomed upload.
//!         if transferable_frac >= 1.0 {
//!             CheckpointPlan::Full
//!         } else if transferable_frac >= 0.5 {
//!             CheckpointPlan::Partial(transferable_frac)
//!         } else {
//!             CheckpointPlan::Abandon
//!         }
//!     }
//! }
//!
//! # use spottune_market::{MarketPool, SimDur};
//! # use spottune_mlsim::{Algorithm, Workload};
//! let pool = MarketPool::standard(SimDur::from_days(1), 42);
//! let base = Workload::benchmark(Algorithm::LoR);
//! let workload = Workload::custom(Algorithm::LoR, 20, base.hp_grid()[..2].to_vec());
//! let engine = Engine::new(SpotTuneConfig::new(1.0, 1), workload, pool);
//! let report = engine.run(&mut CheapestDoubleBid);
//! assert_eq!(report.approach, "CheapestDoubleBid");
//! ```

use crate::baseline::SingleSpotKind;
use crate::migration::{greedy_assignment, min_cost_assignment};
use crate::perfmatrix::PerfMatrix;
use crate::provision::{InstChoice, Provisioner, REWORK_SECS};
use rand::rngs::StdRng;
use spottune_market::{MarketPool, RevocationEstimator, SimDur, SimTime};
use std::collections::BTreeMap;

/// How the engine drives a policy's jobs through time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Transient capacity: the full Algorithm-1 event loop — revocation
    /// notices, checkpoint/restore, proactive recycling, θ-split phases.
    Transient,
    /// Dedicated capacity: one never-revoked VM per configuration, trained
    /// start-to-finish (the baselines' execution model — no notices, no
    /// checkpoints, no early shutdown).
    Dedicated,
}

/// A policy's answer to "where should this configuration run next".
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Request a spot VM with the chosen instance type and maximum price.
    Spot(InstChoice),
    /// Request an on-demand VM: fixed price, no revocations, no refunds.
    OnDemand {
        /// Catalog instance-type name.
        instance: String,
    },
}

/// Everything the engine exposes at a deployment decision point.
/// Event history (revocations, progress) reaches policies through the
/// [`ProvisionPolicy::on_revocation`]/[`ProvisionPolicy::on_progress`]
/// hooks rather than being replayed here.
#[derive(Debug)]
pub struct DeployCtx<'a> {
    /// Current simulation time.
    pub t: SimTime,
    /// Grid index of the configuration being placed.
    pub hp_index: usize,
    /// The market pool (price traces + instance catalog).
    pub pool: &'a MarketPool,
    /// The online performance profile `M` (paper §III.A).
    pub matrix: &'a PerfMatrix,
}

/// A policy's answer to "how much checkpoint should this grace window
/// carry" ([`ProvisionPolicy::plan_checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPlan {
    /// Upload the whole model. If the window is too short for that
    /// (`transferable_frac < 1`), the upload is cut off at revocation and
    /// the job falls back to its last durable checkpoint.
    Full,
    /// Upload this fraction of the model (clamped to what the window
    /// allows); progress beyond the proportional prefix is re-executed.
    Partial(f64),
    /// Skip the upload entirely: burn no transfer time, keep only the
    /// last durable checkpoint.
    Abandon,
}

/// One displaced configuration awaiting redeployment, as shown to
/// [`ProvisionPolicy::assign_migrations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationJob {
    /// Grid index of the configuration.
    pub hp_index: usize,
    /// Training steps still missing (from the last durable checkpoint).
    pub remaining_steps: u64,
}

/// Market context for a batch migration decision.
#[derive(Debug)]
pub struct MigrationCtx<'a> {
    /// Current simulation time.
    pub t: SimTime,
    /// The market pool (price traces + instance catalog).
    pub pool: &'a MarketPool,
    /// The online performance profile `M` (paper §III.A).
    pub matrix: &'a PerfMatrix,
}

/// A provisioning strategy, consulted by the [`Engine`](crate::engine::Engine)
/// at its decision points. See the [module docs](self) for a walkthrough of
/// writing one.
pub trait ProvisionPolicy: std::fmt::Debug {
    /// Human-readable label, used as [`HptReport::approach`]
    /// (e.g. `"SpotTune(θ=0.7)"`).
    ///
    /// [`HptReport::approach`]: crate::report::HptReport::approach
    fn name(&self) -> String;

    /// Which engine drive this policy runs on (transient by default).
    fn mode(&self) -> PolicyMode {
        PolicyMode::Transient
    }

    /// Picks the placement for a waiting configuration. Called whenever a
    /// job needs a VM: first deployment, after a revocation, after a
    /// recycle. `rng` is the campaign's deterministic decision stream;
    /// policies may draw from it (SpotTune's random bid delta) or ignore it
    /// (deterministic bid ladders) — either way campaigns stay reproducible.
    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, rng: &mut StdRng) -> Placement;

    /// Notification that the provider reclaimed the VM `hp_index` was
    /// running on (after the engine settled its steps). Policies use this
    /// to adapt — e.g. [`HybridSpotOnDemand`] counts strikes before falling
    /// back to on-demand capacity.
    fn on_revocation(&mut self, _hp_index: usize, _at: SimTime) {}

    /// Notification that `hp_index` completed a training step (after the
    /// engine recorded the metric and profiled the instance).
    fn on_progress(&mut self, _hp_index: usize, _steps_done: u64, _at: SimTime) {}

    /// Whether to checkpoint at all: consulted for the proactive
    /// checkpoint-and-recycle once a spot VM's age exceeds the one-hour
    /// refund boundary (Algorithm 1 line 31), and — since the grace-window
    /// model — on every revocation notice, regardless of age. Returning
    /// `false` keeps a recyclable VM running, or skips the notice-window
    /// upload (equivalent to [`CheckpointPlan::Abandon`]). Defaults to
    /// `true` — the paper's behaviour.
    fn should_checkpoint(&self, _hp_index: usize, _vm_age: SimDur) -> bool {
        true
    }

    /// How much checkpoint to transfer inside a revocation grace window.
    /// `transferable_frac` is the fraction of the model the
    /// bandwidth-limited window can move out (`bandwidth × grace /
    /// model_size`, possibly above 1). The default — upload everything —
    /// reproduces the engine's historical behaviour exactly: under
    /// contractual two-minute notices the window always fits the whole
    /// model, so `Full` never truncates unless a fault delays the notice.
    fn plan_checkpoint(&self, _hp_index: usize, _transferable_frac: f64) -> CheckpointPlan {
        CheckpointPlan::Full
    }

    /// Places a *batch* of displaced jobs in one decision. Returning
    /// `Some(placements)` (one per job, same order) lets a policy solve
    /// the joint assignment — e.g. spread a storm's victims across
    /// markets instead of piling them back onto the one that just failed.
    /// The default `None` keeps the engine's per-job
    /// [`choose_instance`](ProvisionPolicy::choose_instance) loop, which
    /// is the historical (greedy) behaviour.
    fn assign_migrations(
        &mut self,
        _jobs: &[MigrationJob],
        _ctx: &MigrationCtx<'_>,
    ) -> Option<Vec<Placement>> {
        None
    }
}

/// The paper's policy: fine-grained cost-aware provisioning (Eq. 1–2) with
/// a random bid delta per market, run on the transient drive with the
/// θ-split exploration/exploitation phases.
///
/// This is the exact decision logic the pre-policy-layer `Orchestrator`
/// hard-wired; [`Orchestrator`](crate::orchestrator::Orchestrator) now
/// wraps an engine around this policy, bit-identically.
#[derive(Debug)]
pub struct SpotTuneTheta<'a> {
    estimator: &'a dyn RevocationEstimator,
    delta_range: (f64, f64),
    theta: f64,
}

impl<'a> SpotTuneTheta<'a> {
    /// Creates the paper policy. `theta` only labels the report — the
    /// engine owns the phase split via its config.
    pub fn new(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
    ) -> Self {
        SpotTuneTheta { estimator, delta_range, theta }
    }
}

impl ProvisionPolicy for SpotTuneTheta<'_> {
    fn name(&self) -> String {
        format!("SpotTune(θ={})", self.theta)
    }

    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, rng: &mut StdRng) -> Placement {
        let provisioner = Provisioner::new(self.estimator, self.delta_range);
        Placement::Spot(provisioner.get_best_inst(ctx.pool, ctx.t, ctx.hp_index, ctx.matrix, rng))
    }
}

/// The paper's Single-Spot Tune baseline as a policy: every configuration
/// on one fixed instance type, bid far above the trace cap so it is never
/// revoked, run on the dedicated drive (θ = 1, no checkpoints).
#[derive(Debug, Clone, Copy)]
pub struct SingleSpot {
    kind: SingleSpotKind,
}

impl SingleSpot {
    /// Creates the baseline policy for one instance kind.
    pub fn new(kind: SingleSpotKind) -> Self {
        SingleSpot { kind }
    }
}

impl ProvisionPolicy for SingleSpot {
    fn name(&self) -> String {
        self.kind.label().to_string()
    }

    fn mode(&self) -> PolicyMode {
        PolicyMode::Dedicated
    }

    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, _rng: &mut StdRng) -> Placement {
        let inst_name = self.kind.instance_name();
        let market = ctx
            .pool
            .market(inst_name)
            .unwrap_or_else(|| panic!("pool lacks baseline instance {inst_name}"));
        // The "never revoked" assumption: offer far above the trace cap.
        let never = market.instance().on_demand_price() * 100.0;
        Placement::Spot(InstChoice {
            instance: inst_name.to_string(),
            max_price: never,
            p_revoke: 0.0,
            avg_price: market.avg_price_last_hour(ctx.t),
            expected_step_cost: 0.0,
        })
    }
}

/// The on-demand baseline as a policy: every configuration on one fixed
/// instance type at its published on-demand price — reliable, refund-free,
/// and usually the cost ceiling SpotTune is measured against.
#[derive(Debug, Clone, Copy)]
pub struct OnDemand {
    kind: SingleSpotKind,
}

impl OnDemand {
    /// Creates the on-demand baseline for one instance kind.
    pub fn new(kind: SingleSpotKind) -> Self {
        OnDemand { kind }
    }
}

impl ProvisionPolicy for OnDemand {
    fn name(&self) -> String {
        self.kind.on_demand_label().to_string()
    }

    fn mode(&self) -> PolicyMode {
        PolicyMode::Dedicated
    }

    fn choose_instance(&mut self, _ctx: &DeployCtx<'_>, _rng: &mut StdRng) -> Placement {
        Placement::OnDemand { instance: self.kind.instance_name().to_string() }
    }
}

/// DeepVM-style hybrid: explore on spot capacity exactly like
/// [`SpotTuneTheta`], but once a configuration has been revoked
/// `max_revocations` times, stop gambling and pin it to the on-demand
/// instance with the lowest expected per-step cost under the current
/// profile `M`. Bounds worst-case churn on hostile markets while keeping
/// the refund upside everywhere else.
#[derive(Debug)]
pub struct HybridSpotOnDemand<'a> {
    estimator: &'a dyn RevocationEstimator,
    delta_range: (f64, f64),
    theta: f64,
    max_revocations: u32,
    strikes: BTreeMap<usize, u32>,
}

impl<'a> HybridSpotOnDemand<'a> {
    /// Creates the hybrid policy; configurations fall back to on-demand
    /// after `max_revocations` provider revocations.
    pub fn new(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
        max_revocations: u32,
    ) -> Self {
        assert!(max_revocations >= 1, "hybrid fallback needs at least one strike");
        HybridSpotOnDemand {
            estimator,
            delta_range,
            theta,
            max_revocations,
            strikes: BTreeMap::new(),
        }
    }
}

impl ProvisionPolicy for HybridSpotOnDemand<'_> {
    fn name(&self) -> String {
        format!("Hybrid(θ={}, k={})", self.theta, self.max_revocations)
    }

    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, rng: &mut StdRng) -> Placement {
        if self.strikes.get(&ctx.hp_index).copied().unwrap_or(0) >= self.max_revocations {
            // Struck out: cheapest expected $/step at fixed on-demand rates.
            let market = ctx
                .pool
                .iter()
                .min_by(|a, b| {
                    let cost = |m: &spottune_market::SpotMarket| {
                        ctx.matrix.estimate(m.instance(), ctx.hp_index)
                            * m.instance().on_demand_price()
                    };
                    cost(a).partial_cmp(&cost(b)).expect("finite step costs")
                })
                .expect("non-empty pool");
            return Placement::OnDemand { instance: market.instance().name().to_string() };
        }
        let provisioner = Provisioner::new(self.estimator, self.delta_range);
        Placement::Spot(provisioner.get_best_inst(ctx.pool, ctx.t, ctx.hp_index, ctx.matrix, rng))
    }

    fn on_revocation(&mut self, hp_index: usize, _at: SimTime) {
        *self.strikes.entry(hp_index).or_insert(0) += 1;
    }

    fn should_checkpoint(&self, _hp_index: usize, _vm_age: SimDur) -> bool {
        // Spot VMs keep harvesting refunds; the engine never asks for
        // on-demand VMs (nothing to refund there).
        true
    }
}

/// Voorsluys-style bid-aware provisioning: a deterministic ladder of bid
/// margins per market ([`Provisioner::best_with_deltas`]) instead of
/// SpotTune's single random delta, trading refund-chasing low bids against
/// stability-chasing high ones by expected effective step cost.
#[derive(Debug)]
pub struct BidAware<'a> {
    estimator: &'a dyn RevocationEstimator,
    /// Carried into [`Provisioner::new`] only to satisfy its validation —
    /// the deterministic ladder never draws a random delta from it.
    delta_range: (f64, f64),
    theta: f64,
    delta_fracs: Vec<f64>,
}

impl<'a> BidAware<'a> {
    /// Creates the bid-aware policy with the default margin ladder
    /// (0.1 %, 5 % and 25 % of each instance's on-demand price).
    pub fn new(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
    ) -> Self {
        BidAware::with_ladder(estimator, delta_range, theta, vec![0.001, 0.05, 0.25])
    }

    /// Creates the bid-aware policy with an explicit margin ladder
    /// (fractions of the on-demand price).
    pub fn with_ladder(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
        delta_fracs: Vec<f64>,
    ) -> Self {
        assert!(!delta_fracs.is_empty(), "bid ladder must not be empty");
        BidAware { estimator, delta_range, theta, delta_fracs }
    }
}

impl ProvisionPolicy for BidAware<'_> {
    fn name(&self) -> String {
        format!("BidAware(θ={})", self.theta)
    }

    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, _rng: &mut StdRng) -> Placement {
        // The ladder scan is deterministic; the decision stream is untouched.
        let provisioner = Provisioner::new(self.estimator, self.delta_range);
        Placement::Spot(provisioner.best_with_deltas(
            ctx.pool,
            ctx.t,
            ctx.hp_index,
            ctx.matrix,
            &self.delta_fracs,
        ))
    }
}

/// Which assignment algorithm [`MigrationAware`] runs over the
/// job×candidate cost matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matcher {
    /// First-fit: each job, in order, takes its cheapest remaining slot —
    /// equivalent in spirit to the engine's default per-job loop.
    Greedy,
    /// Kuhn–Munkres minimum total cost over the whole batch.
    KuhnMunkres,
}

/// Fraction of the on-demand price [`MigrationAware`] bids above the
/// current market price (deterministic, like [`BidAware`]'s ladder).
const MIGRATION_BID_FRAC: f64 = 0.05;

/// Smallest transferable fraction [`MigrationAware`] still considers worth
/// the upload time; below it the window is abandoned.
const MIN_PARTIAL_FRAC: f64 = 0.25;

/// The grace-window-aware policy: both defaulted hooks overridden.
///
/// *Checkpointing* — sizes the upload to the window
/// ([`ProvisionPolicy::plan_checkpoint`]): full when it fits, partial
/// when only part does, abandoned when the window is too short to be
/// worth burning on transfer.
///
/// *Migration* — redeploys a displaced batch jointly
/// ([`ProvisionPolicy::assign_migrations`]): each market is replicated
/// into capacity slots whose cost grows with its revocation risk and
/// crowding, and a matcher (greedy or Kuhn–Munkres) assigns jobs to
/// slots. Under a correlated storm this spreads the victims across
/// markets instead of greedily piling everyone back onto the market that
/// just revoked them.
#[derive(Debug)]
pub struct MigrationAware<'a> {
    estimator: &'a dyn RevocationEstimator,
    delta_range: (f64, f64),
    theta: f64,
    matcher: Matcher,
}

impl<'a> MigrationAware<'a> {
    /// Creates the policy with the Kuhn–Munkres matcher (the registry's
    /// `migration-aware` entry).
    pub fn new(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
    ) -> Self {
        MigrationAware::with_matcher(estimator, delta_range, theta, Matcher::KuhnMunkres)
    }

    /// Creates the policy with an explicit matcher (the `fig_grace`
    /// ablation constructs the greedy variant directly).
    pub fn with_matcher(
        estimator: &'a dyn RevocationEstimator,
        delta_range: (f64, f64),
        theta: f64,
        matcher: Matcher,
    ) -> Self {
        MigrationAware { estimator, delta_range, theta, matcher }
    }

    /// The job×slot cost matrix plus each slot's placement, deterministic
    /// in `(jobs, ctx)`: slot `r` of a market multiplies the expected
    /// remaining cost by `1 + r·p` — stacking jobs on a risky market is
    /// progressively penalized (one storm takes them all), stacking on a
    /// safe one is free.
    fn cost_matrix(
        &self,
        jobs: &[MigrationJob],
        ctx: &MigrationCtx<'_>,
    ) -> (Vec<Vec<f64>>, Vec<InstChoice>) {
        let markets = ctx.pool.markets();
        let replicas = jobs.len().div_ceil(markets.len());
        let mut slots = Vec::with_capacity(markets.len() * replicas);
        let mut per_step = Vec::with_capacity(markets.len() * replicas);
        for market in markets {
            let inst = market.instance();
            let max_price = market.price_at(ctx.t) + MIGRATION_BID_FRAC * inst.on_demand_price();
            let p = self
                .estimator
                .revocation_probability(inst.name(), ctx.t, max_price)
                .clamp(0.0, 1.0);
            let avg_price = market.avg_price_last_hour(ctx.t);
            for replica in 0..replicas {
                slots.push(InstChoice {
                    instance: inst.name().to_string(),
                    max_price,
                    p_revoke: p,
                    avg_price,
                    expected_step_cost: 0.0,
                });
                per_step.push((replica, p, avg_price));
            }
        }
        let cost = jobs
            .iter()
            .map(|job| {
                slots
                    .iter()
                    .zip(&per_step)
                    .map(|(slot, &(replica, p, avg_price))| {
                        let inst = ctx
                            .pool
                            .market(&slot.instance)
                            .expect("slot market exists")
                            .instance();
                        let spe = ctx.matrix.estimate(inst, job.hp_index);
                        // Eq. 2 with the rework term, over the remaining
                        // steps, inflated by the crowding penalty.
                        let step = spe * (1.0 - p) * avg_price + p * REWORK_SECS * avg_price;
                        job.remaining_steps as f64 * step * (1.0 + replica as f64 * p)
                    })
                    .collect()
            })
            .collect();
        (cost, slots)
    }
}

impl ProvisionPolicy for MigrationAware<'_> {
    fn name(&self) -> String {
        let m = match self.matcher {
            Matcher::Greedy => "greedy",
            Matcher::KuhnMunkres => "km",
        };
        format!("MigrationAware(θ={}, {m})", self.theta)
    }

    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, rng: &mut StdRng) -> Placement {
        // Single-job decisions (first deployment, lone revocation) use the
        // paper's provisioner unchanged.
        let provisioner = Provisioner::new(self.estimator, self.delta_range);
        Placement::Spot(provisioner.get_best_inst(ctx.pool, ctx.t, ctx.hp_index, ctx.matrix, rng))
    }

    fn plan_checkpoint(&self, _hp_index: usize, transferable_frac: f64) -> CheckpointPlan {
        if transferable_frac >= 1.0 {
            CheckpointPlan::Full
        } else if transferable_frac >= MIN_PARTIAL_FRAC {
            CheckpointPlan::Partial(transferable_frac)
        } else {
            CheckpointPlan::Abandon
        }
    }

    fn assign_migrations(
        &mut self,
        jobs: &[MigrationJob],
        ctx: &MigrationCtx<'_>,
    ) -> Option<Vec<Placement>> {
        if jobs.is_empty() {
            return Some(Vec::new());
        }
        let (cost, slots) = self.cost_matrix(jobs, ctx);
        let assignment = match self.matcher {
            Matcher::Greedy => greedy_assignment(&cost),
            Matcher::KuhnMunkres => min_cost_assignment(&cost),
        };
        Some(
            assignment
                .iter()
                .enumerate()
                .map(|(row, &slot)| {
                    let mut choice = slots[slot].clone();
                    choice.expected_step_cost = cost[row][slot];
                    Placement::Spot(choice)
                })
                .collect(),
        )
    }
}
