//! The online-profiled performance matrix `M[inst][hp]` (seconds per step).
//!
//! "M is initiated according to the number of CPU cores of each instance.
//! During the HPT process, M would be updated in an online manner according
//! to the latest runs" (Algorithm 1 line 36, §III.A). We initialize to
//! `c0 / vcpus` — more cores, fewer expected seconds per step — and refine
//! with an EWMA of observed per-step times.

use serde::{Deserialize, Serialize};
use spottune_market::stats::Ewma;
use spottune_market::InstanceType;

/// Online estimate of seconds-per-step for each (instance, configuration).
///
/// Storage is a handful of linearly-scanned vectors rather than hash maps:
/// the matrix holds one row per market (six in the standard pool) and one
/// column per grid point, and `estimate` runs for every market on every
/// deploy decision — a short string scan beats hashing the instance name.
#[derive(Debug, Clone)]
pub struct PerfMatrix {
    c0: f64,
    alpha: f64,
    /// Per-instance rows of per-configuration observed seconds-per-step.
    cells: Vec<(String, Vec<Option<Ewma>>)>,
    /// Per-configuration work scale: EWMA of `spe × vcpus` over all
    /// observations of that configuration. Unobserved (instance, hp) cells
    /// fall back to `scale / vcpus` — the paper's CPU-count-proportional
    /// initialization, calibrated by whatever has been profiled so far.
    scales: Vec<Option<Ewma>>,
}

/// Snapshot of one matrix cell for reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCell {
    /// Instance-type name.
    pub instance: String,
    /// Grid index of the configuration.
    pub hp_index: usize,
    /// Current seconds-per-step estimate.
    pub spe: f64,
}

impl PerfMatrix {
    /// Creates a matrix with prior `c0 / vcpus` and EWMA factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `c0 > 0` and `alpha ∈ (0, 1]`.
    pub fn new(c0: f64, alpha: f64) -> Self {
        assert!(c0 > 0.0, "c0 must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        PerfMatrix { c0, alpha, cells: Vec::new(), scales: Vec::new() }
    }

    /// Current estimate for `(instance, hp_index)`. Falls back to the
    /// CPU-proportional prior `scale / vcpus`, where `scale` is learned from
    /// the configuration's observations on other instances (or `c0` before
    /// any observation at all).
    pub fn estimate(&self, instance: &InstanceType, hp_index: usize) -> f64 {
        if let Some(v) = self.cell(instance.name(), hp_index).and_then(Ewma::value) {
            return v;
        }
        let scale = self
            .scales
            .get(hp_index)
            .and_then(Option::as_ref)
            .and_then(Ewma::value)
            .unwrap_or(self.c0);
        scale / instance.vcpus() as f64
    }

    fn cell(&self, name: &str, hp_index: usize) -> Option<&Ewma> {
        self.cells
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, row)| row.get(hp_index))
            .and_then(Option::as_ref)
    }

    /// Whether a cell has been observed at least once.
    pub fn observed(&self, instance: &InstanceType, hp_index: usize) -> bool {
        self.cell(instance.name(), hp_index)
            .and_then(Ewma::value)
            .is_some()
    }

    /// Feeds one observed per-step time (Algorithm 1 `updateMetrics`).
    ///
    /// # Panics
    ///
    /// Panics if the sample is not finite and positive.
    pub fn observe(&mut self, instance: &InstanceType, hp_index: usize, spe_sample: f64) {
        assert!(
            spe_sample.is_finite() && spe_sample > 0.0,
            "seconds-per-step sample must be positive, got {spe_sample}"
        );
        let alpha = self.alpha;
        let row = match self.cells.iter_mut().position(|(n, _)| n == instance.name()) {
            Some(i) => &mut self.cells[i].1,
            None => {
                self.cells.push((instance.name().to_string(), Vec::new()));
                &mut self.cells.last_mut().expect("just pushed").1
            }
        };
        if row.len() <= hp_index {
            row.resize(hp_index + 1, None);
        }
        row[hp_index]
            .get_or_insert_with(|| Ewma::new(alpha))
            .update(spe_sample);
        if self.scales.len() <= hp_index {
            self.scales.resize(hp_index + 1, None);
        }
        self.scales[hp_index]
            .get_or_insert_with(|| Ewma::new(alpha))
            .update(spe_sample * instance.vcpus() as f64);
    }

    /// Number of cells with at least one observation.
    pub fn observed_cells(&self) -> usize {
        self.cells
            .iter()
            .map(|(_, row)| row.iter().flatten().count())
            .sum()
    }

    /// Snapshot of all observed cells (sorted for determinism).
    pub fn snapshot(&self) -> Vec<PerfCell> {
        let mut out: Vec<PerfCell> = self
            .cells
            .iter()
            .flat_map(|(name, row)| {
                row.iter().enumerate().filter_map(|(idx, e)| {
                    e.as_ref().and_then(Ewma::value).map(|spe| PerfCell {
                        instance: name.clone(),
                        hp_index: idx,
                        spe,
                    })
                })
            })
            .collect();
        out.sort_by(|a, b| (&a.instance, a.hp_index).cmp(&(&b.instance, b.hp_index)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::instance;

    #[test]
    fn prior_scales_with_vcpus() {
        let m = PerfMatrix::new(1200.0, 0.3);
        let small = instance::by_name("r4.large").unwrap(); // 2 vCPU
        let big = instance::by_name("m4.4xlarge").unwrap(); // 16 vCPU
        assert_eq!(m.estimate(&small, 0), 600.0);
        assert_eq!(m.estimate(&big, 0), 75.0);
        assert!(!m.observed(&small, 0));
    }

    #[test]
    fn observations_override_prior() {
        let mut m = PerfMatrix::new(1200.0, 0.5);
        let inst = instance::by_name("r4.large").unwrap();
        m.observe(&inst, 3, 100.0);
        assert!(m.observed(&inst, 3));
        assert_eq!(m.estimate(&inst, 3), 100.0);
        m.observe(&inst, 3, 200.0);
        assert_eq!(m.estimate(&inst, 3), 150.0); // EWMA with α=0.5
        // Other cells keep the prior.
        assert_eq!(m.estimate(&inst, 4), 600.0);
        assert_eq!(m.observed_cells(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut m = PerfMatrix::new(1200.0, 0.5);
        let a = instance::by_name("r4.large").unwrap();
        let b = instance::by_name("m4.4xlarge").unwrap();
        m.observe(&b, 1, 10.0);
        m.observe(&a, 0, 20.0);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].instance, "m4.4xlarge");
        assert_eq!(snap[1].instance, "r4.large");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_sample_rejected() {
        let mut m = PerfMatrix::new(1200.0, 0.5);
        let inst = instance::by_name("r4.large").unwrap();
        m.observe(&inst, 0, 0.0);
    }
}
