//! Property tests for the migration matcher: on random cost matrices the
//! Kuhn–Munkres assignment is never worse than greedy first-fit, always
//! valid (distinct columns), and matches brute force on small squares.

use proptest::prelude::*;
use spottune_core::migration::{assignment_cost, greedy_assignment, min_cost_assignment};

/// Builds a `rows × (rows + extra)` matrix from a flat entropy pool (the
/// vendored proptest shim has no flat-map, so shape and entries are drawn
/// as independent arguments and assembled here).
fn matrix(rows: usize, extra: usize, flat: &[f64]) -> Vec<Vec<f64>> {
    let cols = rows + extra;
    (0..rows).map(|r| flat[r * cols..(r + 1) * cols].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn km_is_never_worse_than_greedy(
        rows in 1usize..6,
        extra in 0usize..4,
        flat in prop::collection::vec(0.0f64..100.0, 45..46),
    ) {
        let cost = matrix(rows, extra, &flat);
        let g = assignment_cost(&cost, &greedy_assignment(&cost));
        let k = assignment_cost(&cost, &min_cost_assignment(&cost));
        prop_assert!(k <= g + 1e-9, "KM ({k}) must not exceed greedy ({g}) on {cost:?}");
    }

    #[test]
    fn km_assignments_are_valid(
        rows in 1usize..6,
        extra in 0usize..4,
        flat in prop::collection::vec(0.0f64..100.0, 45..46),
    ) {
        let cost = matrix(rows, extra, &flat);
        let km = min_cost_assignment(&cost);
        prop_assert_eq!(km.len(), rows);
        let cols = rows + extra;
        let mut seen = vec![false; cols];
        for &c in &km {
            prop_assert!(c < cols, "column {} out of range", c);
            prop_assert!(!seen[c], "column {} assigned twice", c);
            seen[c] = true;
        }
    }

    #[test]
    fn km_optimum_is_translation_invariant(
        rows in 1usize..6,
        extra in 0usize..4,
        flat in prop::collection::vec(0.0f64..100.0, 45..46),
        shift in 0.0f64..50.0,
    ) {
        // Adding a constant to every entry shifts every assignment's total
        // by rows × shift, so the optimal assignment cost must shift by
        // exactly that (the argmin set is unchanged).
        let cost = matrix(rows, extra, &flat);
        let base = assignment_cost(&cost, &min_cost_assignment(&cost));
        let shifted: Vec<Vec<f64>> =
            cost.iter().map(|r| r.iter().map(|c| c + shift).collect()).collect();
        let moved = assignment_cost(&shifted, &min_cost_assignment(&shifted));
        let expect = base + rows as f64 * shift;
        prop_assert!(
            (moved - expect).abs() < 1e-6,
            "translation moved the optimum: {moved} vs {expect}"
        );
    }

    #[test]
    fn km_matches_brute_force_on_4x4(
        flat in prop::collection::vec(0.0f64..100.0, 16..17),
    ) {
        let cost = matrix(4, 0, &flat);
        let km = assignment_cost(&cost, &min_cost_assignment(&cost));
        let mut best = f64::INFINITY;
        let mut perm = [0usize, 1, 2, 3];
        permute(&mut perm, 0, &mut |p| {
            let total: f64 = p.iter().enumerate().map(|(r, &c)| cost[r][c]).sum();
            if total < best {
                best = total;
            }
        });
        prop_assert!((km - best).abs() < 1e-9, "KM {km} vs brute force {best}");
    }
}

fn permute(items: &mut [usize; 4], k: usize, visit: &mut impl FnMut(&[usize; 4])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}
