//! The estimator registry's ground rule (ISSUE 5 acceptance): the default
//! `oracle(0.9)` spec is **bit-identical** to the pre-refactor hard-coded
//! `OracleEstimator::new(pool, 0.9)` path over 100+ campaigns for every
//! registered policy — making the spec a pure refactor — while a
//! non-default oracle accuracy actually changes provisioning decisions on
//! a volatile scenario (the estimator is a real campaign dimension, not a
//! label).

use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketPool, SimDur};
use spottune_mlsim::prelude::*;

fn tiny(algorithm: Algorithm, steps: u64) -> Workload {
    let base = Workload::benchmark(algorithm);
    Workload::custom(algorithm, steps, base.hp_grid()[..2].to_vec())
}

/// 6 policies × 2 workloads × 9 seeds = 108 campaigns.
#[test]
fn default_spec_is_bit_identical_to_the_prerefactor_oracle_path() {
    let pool = MarketPool::standard(SimDur::from_days(1), 42);
    let workloads = [tiny(Algorithm::LoR, 15), tiny(Algorithm::Gbtr, 12)];
    let curve_cache = CurveCache::new();
    let mut campaigns = 0usize;
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        for workload in &workloads {
            for seed in 0..9u64 {
                let campaign = Campaign::new(approach, workload.clone(), seed);
                assert_eq!(campaign.estimator, EstimatorSpec::default());
                let via_spec = campaign.run_with_cache(&pool, &curve_cache);
                // The pre-refactor body of `Campaign::run`, verbatim: a
                // hand-built oracle at confidence 0.9 driving the policy.
                let oracle = OracleEstimator::new(pool.clone(), 0.9);
                let legacy = campaign.run_with_estimator(&pool, &curve_cache, &oracle);
                assert_eq!(
                    via_spec, legacy,
                    "{name} seed {seed}: default spec must reproduce the legacy path"
                );
                campaigns += 1;
            }
        }
    }
    assert!(campaigns >= 100, "equivalence must cover 100+ campaigns, got {campaigns}");
}

/// ISSUE 5 satellite: `oracle(acc)` exposes the accuracy frozen at 0.9 —
/// a non-default accuracy must change provisioning somewhere on a
/// volatile scenario.
#[test]
fn non_default_oracle_accuracy_changes_provisioning() {
    // Long traces + several seeds give the weakened oracle (barely better
    // than a coin flip) room to mis-rank a market the confident oracle
    // ranks correctly.
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let workload = tiny(Algorithm::LoR, 20);
    let mut any_difference = false;
    for seed in 0..6u64 {
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.7 }, workload.clone(), seed);
        let confident = campaign.run(&pool);
        let hesitant = campaign
            .clone()
            .with_estimator(EstimatorSpec::Oracle { confidence: 0.55 })
            .run(&pool);
        if confident != hesitant {
            any_difference = true;
            break;
        }
    }
    assert!(
        any_difference,
        "oracle(0.55) must provision differently from oracle(0.9) on some volatile campaign"
    );
}

/// The degenerate `constant(0)` spec reduces SpotTune to pure
/// lowest-step-cost provisioning and still completes every policy.
#[test]
fn constant_spec_runs_every_registered_policy() {
    let pool = MarketPool::standard(SimDur::from_days(1), 7);
    let workload = tiny(Algorithm::LoR, 15);
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        let report = Campaign::new(approach, workload.clone(), 3)
            .with_estimator(EstimatorSpec::Constant { p: 0.0 })
            .run(&pool);
        assert_eq!(report.predicted_finals.len(), 2, "{name}");
        assert!(report.jct.as_secs() > 0, "{name}");
    }
}
