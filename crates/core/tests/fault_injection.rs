//! Fault-injection harness acceptance: seeded fault plans are
//! deterministic (same seed → bit-identical campaigns), both drives agree
//! under faults, and every registered policy survives a correlated
//! revocation storm with a coherent report.

use spottune_cloud::FaultPlan;
use spottune_core::policy::SpotTuneTheta;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_market::RevocationEstimator;
use spottune_mlsim::prelude::*;

fn tiny(steps: u64) -> Workload {
    let base = Workload::benchmark(Algorithm::LoR);
    Workload::custom(Algorithm::LoR, steps, base.hp_grid()[..2].to_vec())
}

/// A plan exercising all three fault classes: periodic storms on one
/// market, delayed notices on a third of the fleet, and a tenth of the
/// checkpoint writes failing.
fn stormy_plan(pool: &MarketPool) -> FaultPlan {
    let market = pool.iter().next().expect("non-empty pool").instance().name().to_string();
    FaultPlan::new(77)
        .with_periodic_storms(&market, SimTime::from_hours(11), SimDur::from_mins(40), 12)
        .with_delayed_notices(0.33, SimDur::from_secs(20))
        .with_checkpoint_failures(0.1)
}

fn run_spottune(
    pool: &MarketPool,
    oracle: &dyn RevocationEstimator,
    plan: &FaultPlan,
    mode: DriveMode,
) -> (HptReport, Vec<TraceEvent>) {
    let cfg = SpotTuneConfig::new(0.7, 2).with_seed(9).with_drive_mode(mode);
    let mut policy = SpotTuneTheta::new(oracle, cfg.delta_range, 0.7);
    Engine::new(cfg, tiny(25), pool.clone())
        .with_fault_plan(plan.clone())
        .run_traced(&mut policy)
}

#[test]
fn same_fault_seed_replays_bit_identically() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let plan = stormy_plan(&pool);
    let (report_a, events_a) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    let (report_b, events_b) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    assert_eq!(events_a, events_b, "same fault seed must replay the same timeline");
    assert_eq!(report_a, report_b, "same fault seed must replay the same report");
    // A different fault seed steers the campaign elsewhere (the plan is
    // actually consulted, not ignored).
    let reseeded = FaultPlan::new(78)
        .with_periodic_storms(
            plan.storms()[0].market.as_str(),
            SimTime::from_hours(11),
            SimDur::from_mins(40),
            12,
        )
        .with_delayed_notices(0.33, SimDur::from_secs(20))
        .with_checkpoint_failures(0.1);
    let (report_c, _) = run_spottune(&pool, &oracle, &reseeded, DriveMode::Event);
    assert_ne!(report_a, report_c, "the fault seed must matter");
}

#[test]
fn tick_and_event_drives_agree_under_faults() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let plan = stormy_plan(&pool);
    let (tick_report, tick_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Tick);
    let (event_report, event_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    assert_eq!(tick_events, event_events, "drives diverged under faults");
    assert_eq!(tick_report, event_report, "reports diverged under faults");
}

#[test]
fn storms_revoke_and_campaigns_still_account_coherently() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let plan = stormy_plan(&pool);
    let (with_faults, _) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    let cfg = SpotTuneConfig::new(0.7, 2).with_seed(9);
    let mut policy = SpotTuneTheta::new(&oracle, cfg.delta_range, 0.7);
    let fault_free = Engine::new(cfg, tiny(25), pool.clone()).run(&mut policy);
    assert!(
        with_faults.revocations >= fault_free.revocations,
        "storms must only add revocations ({} < {})",
        with_faults.revocations,
        fault_free.revocations
    );
    assert_eq!(fault_free.lost_steps, 0, "fault-free campaigns lose nothing");
    assert!(
        (with_faults.gross - with_faults.cost - with_faults.refunded).abs() < 1e-9,
        "billing identity must hold under faults"
    );
    // Every config still reports a prediction and finishes.
    assert_eq!(with_faults.predicted_finals.len(), 2);
}

/// A 1–9 s notice lead sits strictly inside the 10 s poll interval: on
/// the grid the notice lands on the revocation tick itself and its grace
/// collapses to zero, so the tick drive can never checkpoint ahead of the
/// storm. The event drive delivers the notice at its true instant with
/// the full sub-poll window — plenty for a 5 MB model at ~60 MB/s.
#[test]
fn sub_poll_notice_delivers_true_grace_in_event_mode() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let market = pool.iter().next().expect("non-empty pool").instance().name().to_string();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let plan = FaultPlan::new(3)
        .with_periodic_storms(&market, SimTime::from_hours(11), SimDur::from_mins(40), 6)
        .with_delayed_notices(1.0, SimDur::from_secs(5));
    let (_, tick_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Tick);
    let (event_report, event_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    assert!(event_report.revocations > 0, "the storm plan must actually revoke");
    let notice_ckpts = |evs: &[TraceEvent]| {
        evs.iter()
            .filter_map(|e| match e {
                TraceEvent::NoticeCheckpoint { at, .. } => Some(*at),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    // Grace zero burns every window on the grid…
    assert_eq!(
        notice_ckpts(&tick_events),
        vec![],
        "a 5 s lead must collapse to zero grace on the 10 s grid"
    );
    // …while true-instant delivery captures full checkpoints, at instants
    // that provably sit off the poll grid.
    let captured = notice_ckpts(&event_events);
    assert!(!captured.is_empty(), "event drive must checkpoint inside the 5 s window");
    for at in &captured {
        assert_ne!(
            at.as_secs() % 10,
            0,
            "sub-poll notices are delivered off the grid, got {at:?}"
        );
    }
}

/// The flip side of the sub-poll path: a lead that lands *on* the grid
/// (one whole poll interval) takes the ordinary tick-body route in both
/// drives, so tick and event stay bit-identical — sub-poll delivery only
/// engages for instants the grid cannot represent.
#[test]
fn grid_aligned_delayed_notices_keep_drives_identical() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let market = pool.iter().next().expect("non-empty pool").instance().name().to_string();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let plan = FaultPlan::new(3)
        .with_periodic_storms(&market, SimTime::from_hours(11), SimDur::from_mins(40), 6)
        .with_delayed_notices(1.0, SimDur::from_secs(10));
    let (tick_report, tick_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Tick);
    let (event_report, event_events) = run_spottune(&pool, &oracle, &plan, DriveMode::Event);
    assert_eq!(tick_events, event_events, "grid-aligned leads must not diverge");
    assert_eq!(tick_report, event_report, "grid-aligned leads must not diverge");
}

/// CI `fault-smoke`: every registered policy terminates a small sweep
/// under an injected storm and returns a structurally-sound report.
#[test]
fn every_policy_terminates_under_an_injected_storm() {
    let pool = MarketPool::standard(SimDur::from_days(2), 42);
    let plan = stormy_plan(&pool);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        let theta = if approach.is_theta_parameterized() { 0.7 } else { 1.0 };
        let cfg = SpotTuneConfig::new(theta, 3).with_seed(11);
        let mut policy = approach.build_policy(&oracle, &cfg);
        let report = Engine::new(cfg, tiny(20), pool.clone())
            .with_fault_plan(plan.clone())
            .run(policy.as_mut());
        assert_eq!(report.predicted_finals.len(), 2, "{name}: prediction per config");
        assert!(report.jct.as_secs() > 0, "{name}: non-zero JCT");
        assert!(report.cost.is_finite() && report.cost >= 0.0, "{name}: finite cost");
        assert!(
            (report.gross - report.cost - report.refunded).abs() < 1e-9,
            "{name}: billing identity under storm"
        );
    }
}
