//! Policy-layer lock-in (ISSUE 4 acceptance): re-expressing the paper's
//! approaches as [`ProvisionPolicy`] impls must not move a single bit.
//!
//! * `SingleSpot` and `OnDemand` run through the engine's dedicated drive
//!   and are compared report-for-report against the closed-form reference
//!   implementations retained in `spottune_core::baseline`.
//! * `SpotTuneTheta` runs through the transient drive; the tick-loop
//!   reference (`DriveMode::Tick`, the seed implementation's literal
//!   10-second loop) must produce bit-identical reports *and* trace-event
//!   sequences, and the `Orchestrator` facade must agree with the
//!   engine+policy composition it wraps.
//!
//! Together the cases below cover 130 campaigns (≥ 100 required).

use rand::rngs::StdRng;
use spottune_core::policy::SpotTuneTheta;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;

fn tiny(algorithm: Algorithm, steps: u64) -> Workload {
    let base = Workload::benchmark(algorithm);
    Workload::custom(algorithm, steps, base.hp_grid()[..2].to_vec())
}

/// 80 campaigns: 2 workloads × 2 kinds × 10 seeds × 2 market scenarios.
#[test]
fn single_spot_policy_is_bit_identical_to_closed_form() {
    let workloads = [tiny(Algorithm::LoR, 12), tiny(Algorithm::Gbtr, 10)];
    let pools = [
        MarketPool::standard(SimDur::from_days(1), 42),
        MarketPool::standard(SimDur::from_days(1), 77),
    ];
    let start = SpotTuneConfig::default().start;
    let mut campaigns = 0;
    for workload in &workloads {
        for kind in [SingleSpotKind::Cheapest, SingleSpotKind::Fastest] {
            for seed in 0..10u64 {
                for pool in &pools {
                    let via_policy =
                        Campaign::new(Approach::SingleSpot(kind), workload.clone(), seed)
                            .run(pool);
                    let reference = run_single_spot(kind, workload, pool, start, seed);
                    assert_eq!(
                        via_policy, reference,
                        "SingleSpot({kind:?}) seed={seed} diverged from the closed form"
                    );
                    campaigns += 1;
                }
            }
        }
    }
    assert_eq!(campaigns, 80);
}

/// 40 campaigns: 2 workloads × 2 kinds × 10 seeds.
#[test]
fn on_demand_policy_is_bit_identical_to_closed_form() {
    let workloads = [tiny(Algorithm::LoR, 12), tiny(Algorithm::Gbtr, 10)];
    let pool = MarketPool::standard(SimDur::from_days(1), 42);
    let start = SpotTuneConfig::default().start;
    let mut campaigns = 0;
    for workload in &workloads {
        for kind in [SingleSpotKind::Cheapest, SingleSpotKind::Fastest] {
            for seed in 0..10u64 {
                let via_policy =
                    Campaign::new(Approach::OnDemand(kind), workload.clone(), seed).run(&pool);
                let reference = run_on_demand(kind, workload, &pool, start, seed);
                assert_eq!(
                    via_policy, reference,
                    "OnDemand({kind:?}) seed={seed} diverged from the closed form"
                );
                // On-demand economics: refund-free by construction.
                assert_eq!(via_policy.refunded, 0.0);
                assert_eq!(via_policy.revocations, 0);
                campaigns += 1;
            }
        }
    }
    assert_eq!(campaigns, 40);
}

/// 10 campaigns: the SpotTuneTheta policy through both drives, plus the
/// Orchestrator facade, all bit-identical.
#[test]
fn spottune_policy_matches_tick_reference_and_facade() {
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = tiny(Algorithm::LoR, 30);
    let mut campaigns = 0;
    for theta in [0.5, 1.0] {
        for seed in 0..5u64 {
            let run_engine = |mode: DriveMode| {
                let cfg = SpotTuneConfig::new(theta, 2).with_seed(seed).with_drive_mode(mode);
                let mut policy = SpotTuneTheta::new(&oracle, cfg.delta_range, theta);
                Engine::new(cfg, w.clone(), pool.clone()).run_traced(&mut policy)
            };
            let (tick_report, tick_events) = run_engine(DriveMode::Tick);
            let (event_report, event_events) = run_engine(DriveMode::Event);
            assert_eq!(
                tick_events, event_events,
                "θ={theta} seed={seed}: trace events diverged across drives"
            );
            assert_eq!(
                tick_report, event_report,
                "θ={theta} seed={seed}: reports diverged across drives"
            );
            // The facade is exactly engine + SpotTuneTheta.
            let cfg = SpotTuneConfig::new(theta, 2).with_seed(seed);
            let facade = Orchestrator::new(cfg, w.clone(), pool.clone(), &oracle).run();
            assert_eq!(facade, event_report, "θ={theta} seed={seed}: facade diverged");
            campaigns += 1;
        }
    }
    assert_eq!(campaigns, 10);
}

/// The two related-work policies complete campaigns through the same
/// engine and report coherent accounting (their *behaviour* is new, so
/// there is no legacy path to lock against — sanity only).
#[test]
fn new_policies_run_through_the_same_engine() {
    let pool = MarketPool::standard(SimDur::from_days(1), 42);
    let w = tiny(Algorithm::LoR, 15);
    for approach in [
        Approach::Hybrid { theta: 0.7, max_revocations: 1 },
        Approach::BidAware { theta: 0.7 },
        Approach::MigrationAware { theta: 0.7 },
    ] {
        let report = Campaign::new(approach, w.clone(), 3).run(&pool);
        assert_eq!(report.predicted_finals.len(), 2);
        assert!(report.jct.as_secs() > 0);
        assert!((report.gross - report.cost - report.refunded).abs() < 1e-9);
        assert!(report.deployments >= 2);
    }
}

/// A policy that overrides *nothing* beyond what SpotTuneTheta already
/// overrode: the grace-window hooks (`plan_checkpoint`,
/// `assign_migrations`) stay at their trait defaults. The engine's
/// grace-window machinery must then reproduce the historical
/// checkpoint-on-notice path bit for bit.
#[derive(Debug)]
struct DefaultHooks<'a>(SpotTuneTheta<'a>);

impl ProvisionPolicy for DefaultHooks<'_> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn mode(&self) -> PolicyMode {
        self.0.mode()
    }
    fn choose_instance(&mut self, ctx: &DeployCtx<'_>, rng: &mut StdRng) -> Placement {
        self.0.choose_instance(ctx, rng)
    }
    // plan_checkpoint / assign_migrations / should_checkpoint /
    // on_revocation / on_progress: trait defaults, on purpose.
}

/// 12 campaigns: the defaulted grace-window hooks must not move a bit —
/// same reports, same trace events, and no rolled-back or migrated work.
#[test]
fn default_grace_hooks_are_bit_identical_to_spottune() {
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = tiny(Algorithm::LoR, 30);
    for theta in [0.6, 1.0] {
        for seed in 0..6u64 {
            let cfg = SpotTuneConfig::new(theta, 2).with_seed(seed);
            let mut reference = SpotTuneTheta::new(&oracle, cfg.delta_range, theta);
            let (ref_report, ref_events) =
                Engine::new(cfg.clone(), w.clone(), pool.clone()).run_traced(&mut reference);
            let mut defaulted =
                DefaultHooks(SpotTuneTheta::new(&oracle, cfg.delta_range, theta));
            let (def_report, def_events) =
                Engine::new(cfg, w.clone(), pool.clone()).run_traced(&mut defaulted);
            assert_eq!(ref_events, def_events, "θ={theta} seed={seed}: events diverged");
            assert_eq!(ref_report, def_report, "θ={theta} seed={seed}: reports diverged");
            // Fault-free defaults never roll back or batch-migrate.
            assert_eq!(ref_report.lost_steps, 0, "θ={theta} seed={seed}");
            assert_eq!(ref_report.migrations, 0, "θ={theta} seed={seed}");
        }
    }
}
