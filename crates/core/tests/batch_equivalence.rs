//! Batched-sweep acceptance (spotlint R1 batch coverage): the batched
//! path — [`BatchRunner::run_many`] grouping requests by scenario over
//! shared spines, arenas and predictor tiers — must be **bit-identical**
//! to looping the serial reference [`CampaignRequest::run_serial`], over
//! the full registered policy × estimator matrix, under a seeded fault
//! plan with revocation storms, and across interleaved scenarios with
//! request order preserved.

use spottune_cloud::FaultPlan;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;

fn tiny_workload() -> Workload {
    let base = Workload::benchmark(Algorithm::LoR);
    Workload::custom(Algorithm::LoR, 15, base.hp_grid()[..2].to_vec())
}

/// Registry name → canonical runnable spec: argless where the name parses
/// directly (`oracle`, the learned kinds), parameterized for `constant`.
fn spec_for(name: &str) -> EstimatorSpec {
    EstimatorSpec::parse(name)
        .or_else(|| EstimatorSpec::parse(&format!("{name}(0.2)")))
        .unwrap_or_else(|| panic!("registered estimator {name} must parse"))
}

/// Registry-driven full matrix: every registered policy under every
/// registered estimator kind, batched vs serial, bit for bit. Iterating
/// both registries means a newly registered policy or estimator fails
/// here (and spotlint R1) until the batched path genuinely covers it.
#[test]
fn full_policy_estimator_matrix_is_bit_identical_to_serial() {
    // Short traces keep the learned kinds' training windows tiny; the
    // serial reference retrains per campaign, so the matrix would
    // otherwise spend minutes inside LSTM training.
    let scenario = MarketScenario::new(SimDur::from_hours(5), 31);
    let workload = tiny_workload();
    let mut requests = Vec::new();
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        for est_name in EstimatorSpec::registered_estimators() {
            requests.push(CampaignRequest {
                id: requests.len() as u64,
                approach,
                workload: workload.clone(),
                scenario,
                seed: 7,
                estimator: spec_for(est_name),
            });
        }
    }
    assert_eq!(requests.len(), 7 * 5, "registry sizes changed; widen the matrix");

    let runner = BatchRunner::new();
    let batched = runner.run_many(&requests);

    let pool = scenario.build();
    let curve_cache = CurveCache::new();
    for (request, got) in requests.iter().zip(&batched) {
        let want = request.run_serial(&pool, &curve_cache);
        assert_eq!(
            *got, want,
            "{} × {} must be bit-identical to the serial reference",
            request.approach.policy_name(),
            request.estimator
        );
    }
    let stats = runner.stats();
    assert_eq!(stats.campaigns, requests.len() as u64);
    assert_eq!(stats.groups, 1, "one scenario, one group session");
    assert!(
        stats.spine_queries > 0,
        "batched campaigns must answer revocation lookups through the spine"
    );
    // The batched path trains each learned kind once per scenario; the
    // serial loop above retrained it per campaign.
    assert_eq!(stats.predictor_cache.misses, 3, "{:?}", stats.predictor_cache);
    assert_eq!(stats.pool_cache.misses, 1);
    assert_eq!(stats.spine_cache.misses, 1);
    // The default runner stages the matrix through the SoA cohort path:
    // transient predictions must actually cross the lane kernel.
    assert!(runner.soa(), "run_many defaults to the SoA path");
    assert!(stats.kernel_invocations > 0, "matrix must exercise the lane kernel");
    assert!(stats.lane_jobs > 0);
    let occupancy = stats.lane_occupancy().expect("kernel ran");
    assert!(occupancy > 0.0 && occupancy <= 1.0, "occupancy {occupancy}");
}

/// The `--no-soa` A/B: the SoA cohort path (cross-campaign lane kernel,
/// probe-cached learned estimators) against the historical one-campaign-
/// at-a-time group loop. Same requests, bit-identical report vectors; the
/// counters prove the two runs took different paths.
#[test]
fn soa_and_no_soa_runners_produce_bit_identical_reports() {
    let scenario = MarketScenario::new(SimDur::from_hours(5), 41);
    let workload = tiny_workload();
    let approaches = [
        Approach::SpotTune { theta: 0.7 },
        Approach::SpotTune { theta: 1.0 },
        Approach::Hybrid { theta: 0.7, max_revocations: 3 },
        Approach::MigrationAware { theta: 0.7 },
    ];
    let estimators = [
        EstimatorSpec::default(),
        EstimatorSpec::Constant { p: 0.2 },
        spec_for("logistic"),
    ];
    let mut requests = Vec::new();
    for (i, approach) in approaches.iter().cycle().take(12).enumerate() {
        requests.push(CampaignRequest {
            id: i as u64,
            approach: *approach,
            workload: workload.clone(),
            scenario,
            seed: 40 + i as u64,
            estimator: estimators[i % estimators.len()],
        });
    }

    let soa = BatchRunner::new();
    let scalar = BatchRunner::new().with_soa(false);
    let got = soa.run_many(&requests);
    let want = scalar.run_many(&requests);
    assert_eq!(got, want, "SoA and no-SoA paths must be bit-identical");

    let soa_stats = soa.stats();
    let scalar_stats = scalar.stats();
    assert!(soa_stats.kernel_invocations > 0, "SoA run must use the kernel");
    assert_eq!(scalar_stats.kernel_invocations, 0, "no-SoA run must not");
    assert_eq!(scalar_stats.lane_occupancy(), None);
    assert_eq!(soa_stats.campaigns, scalar_stats.campaigns);
}

/// `migration-aware` under a seeded fault plan with correlated revocation
/// storms, delayed notices and failing checkpoint writes: the batched
/// runner threads the plan into every engine and must reproduce the
/// serial per-campaign engines bit for bit.
#[test]
fn migration_aware_matches_serial_under_a_storm_plan() {
    let scenario = MarketScenario::from_days(1, 13);
    let pool = scenario.build();
    let market = pool.iter().next().expect("non-empty pool").instance().name().to_string();
    let plan = FaultPlan::new(77)
        .with_periodic_storms(&market, SimTime::from_hours(5), SimDur::from_mins(40), 6)
        .with_delayed_notices(0.33, SimDur::from_secs(20))
        .with_checkpoint_failures(0.1);

    let requests: Vec<CampaignRequest> = (0..4u64)
        .map(|i| CampaignRequest {
            id: i,
            approach: Approach::MigrationAware { theta: 0.7 },
            workload: tiny_workload(),
            scenario,
            seed: 11 + i,
            estimator: EstimatorSpec::default(),
        })
        .collect();

    let runner = BatchRunner::new().with_fault_plan(plan.clone());
    let batched = runner.run_many(&requests);

    // Serial reference: one fresh engine per campaign, same plan, no
    // shared spine or scratch (mirrors `Campaign::run_with_cache` with
    // the fault plan threaded in).
    let curve_cache = CurveCache::new();
    for (request, got) in requests.iter().zip(&batched) {
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(0.7, 3).with_seed(request.seed);
        let mut policy = request.approach.build_policy(&oracle, &cfg);
        let want = Engine::new(cfg, request.workload.clone(), pool.clone())
            .with_curve_cache(curve_cache.clone())
            .with_fault_plan(plan.clone())
            .run(policy.as_mut());
        assert_eq!(
            *got, want,
            "seed {}: batched storm campaign must match the serial engine",
            request.seed
        );
    }
    // The plan was actually consulted, not dropped on the batched path.
    assert!(
        batched.iter().any(|r| r.revocations > 0),
        "storm plan produced no revocations; the fault plan is not being threaded"
    );
}

/// Requests interleaved across two scenarios come back in request order:
/// grouping is an internal scheduling detail, never an observable
/// reordering.
#[test]
fn interleaved_scenarios_preserve_request_order() {
    let near = MarketScenario::from_days(1, 3);
    let far = MarketScenario::from_days(1, 4);
    let requests: Vec<CampaignRequest> = (0..8u64)
        .map(|i| CampaignRequest {
            id: i,
            approach: Approach::SpotTune { theta: 0.7 },
            workload: tiny_workload(),
            scenario: if i % 2 == 0 { near } else { far },
            seed: 100 + i,
            estimator: EstimatorSpec::Constant { p: 0.2 },
        })
        .collect();
    let batched = Campaign::run_many(&requests);
    assert_eq!(batched.len(), requests.len());
    let curve_cache = CurveCache::new();
    let near_pool = near.build();
    let far_pool = far.build();
    for (i, (request, got)) in requests.iter().zip(&batched).enumerate() {
        let pool = if i % 2 == 0 { &near_pool } else { &far_pool };
        let want = request.run_serial(pool, &curve_cache);
        assert_eq!(*got, want, "slot {i} must hold request {i}'s report");
    }
}
