//! Lock-in tests: the event-driven drive must reproduce the 10-second tick
//! loop *bit-identically* — same `HptReport` (every field, f64s included)
//! and the same `TraceEvent` sequence, event for event. Quantizing event
//! times to the poll grid makes the two strategies visit the same ticks
//! with the same per-tick body, so any divergence is a bug in the jump
//! computation.

use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;

fn workload(alg: Algorithm, steps: u64, n: usize) -> Workload {
    let base = Workload::benchmark(alg);
    Workload::custom(alg, steps, base.hp_grid()[..n].to_vec())
}

fn run_both(
    alg: Algorithm,
    steps: u64,
    n: usize,
    theta: f64,
    mcnt: usize,
    seed: u64,
) -> ((HptReport, Vec<TraceEvent>), (HptReport, Vec<TraceEvent>)) {
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = workload(alg, steps, n);
    let run = |mode: DriveMode| {
        let cfg = SpotTuneConfig::new(theta, mcnt)
            .with_seed(seed)
            .with_drive_mode(mode);
        Orchestrator::new(cfg, w.clone(), pool.clone(), &oracle).run_traced()
    };
    (run(DriveMode::Tick), run(DriveMode::Event))
}

fn assert_identical(
    (tick_report, tick_events): (HptReport, Vec<TraceEvent>),
    (event_report, event_events): (HptReport, Vec<TraceEvent>),
    label: &str,
) {
    assert_eq!(
        tick_events.len(),
        event_events.len(),
        "{label}: event count diverged"
    );
    for (i, (a, b)) in tick_events.iter().zip(&event_events).enumerate() {
        assert_eq!(a, b, "{label}: trace event {i} diverged");
    }
    assert_eq!(tick_report, event_report, "{label}: report diverged");
}

#[test]
fn lor_campaigns_match_across_theta() {
    for (theta, seed) in [(0.4, 5u64), (0.7, 7), (1.0, 9)] {
        let (tick, event) = run_both(Algorithm::LoR, 60, 4, theta, 2, seed);
        assert!(tick.0.jct.as_secs() > 0);
        assert_identical(tick, event, &format!("LoR θ={theta} seed={seed}"));
    }
}

#[test]
fn svm_campaigns_match_across_theta() {
    for (theta, seed) in [(0.4, 11u64), (0.7, 13), (1.0, 17)] {
        let (tick, event) = run_both(Algorithm::Svm, 50, 4, theta, 1, seed);
        assert_identical(tick, event, &format!("SVM θ={theta} seed={seed}"));
    }
}

#[test]
fn coarse_poll_interval_still_matches() {
    // A one-minute grid stresses multi-step ticks (several steps can
    // complete inside a single tick) and late-notice delivery.
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = workload(Algorithm::LoR, 40, 3);
    let run = |mode: DriveMode| {
        let mut cfg = SpotTuneConfig::new(0.7, 1).with_seed(3).with_drive_mode(mode);
        cfg.poll_interval = SimDur::from_secs(60);
        Orchestrator::new(cfg, w.clone(), pool.clone(), &oracle).run_traced()
    };
    assert_identical(run(DriveMode::Tick), run(DriveMode::Event), "coarse poll");
}

#[test]
fn event_drive_is_the_default() {
    assert_eq!(SpotTuneConfig::default().drive_mode, DriveMode::Event);
}
