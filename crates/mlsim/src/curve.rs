//! Staged synthetic training-curve model for the CNN benchmarks.
//!
//! Training AlexNet/ResNet on CIFAR-10 inside the simulator is out of scope,
//! so their validation-loss series come from this generative model instead
//! (substitution documented in DESIGN.md). The model reproduces exactly the
//! two properties the paper's predictors key on:
//!
//! * **sublinear convergence** — each stage decays like
//!   `plateau + amp / (1 + rate·(k − start))^power`, the `O(1/k)`-family
//!   shape of gradient-based training (§II.B, [18]);
//! * **multi-stage drops** — when the learning rate decays at the `de`
//!   (decay-epochs) boundary, the loss falls sharply onto a new, lower curve
//!   (paper Fig. 5(b)), which is precisely the case SLAQ's single-stage fit
//!   mishandles and EarlyCurve's piecewise fit (Eq. 4) targets.

use crate::hp::HpSetting;
use serde::{Deserialize, Serialize};

/// One stage of a staged training curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// First step of the stage (inclusive).
    pub start: u64,
    /// Asymptote the stage decays toward.
    pub plateau: f64,
    /// Amplitude above the plateau at the stage start.
    pub amp: f64,
    /// Decay speed.
    pub rate: f64,
    /// Sublinear exponent.
    pub power: f64,
}

impl Stage {
    /// Noise-free stage value at absolute step `k` (≥ `start`).
    pub fn value_at(&self, k: u64) -> f64 {
        let rel = (k - self.start) as f64;
        self.plateau + self.amp / (1.0 + self.rate * rel).powf(self.power)
    }
}

/// A piecewise sublinear training curve with deterministic per-step noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedCurveModel {
    stages: Vec<Stage>,
    noise: f64,
    seed: u64,
}

impl StagedCurveModel {
    /// Builds a model from explicit stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, not sorted by `start`, or the first
    /// stage does not begin at step 0.
    pub fn new(stages: Vec<Stage>, noise: f64, seed: u64) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert_eq!(stages[0].start, 0, "first stage must start at step 0");
        for w in stages.windows(2) {
            assert!(w[0].start < w[1].start, "stages must be sorted by start");
        }
        StagedCurveModel { stages, noise, seed }
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Noise-free metric at step `k` (1-based steps work fine; stage lookup
    /// uses the greatest stage with `start <= k`).
    pub fn clean_metric_at(&self, k: u64) -> f64 {
        let stage = self
            .stages
            .iter()
            .rev()
            .find(|s| s.start <= k)
            .expect("stage 0 covers all steps");
        stage.value_at(k)
    }

    /// Metric at step `k` with multiplicative deterministic noise.
    ///
    /// The noise is a pure function of `(seed, k)`, so the curve is
    /// identical regardless of evaluation order — a requirement for
    /// checkpoint/restore simulation.
    pub fn metric_at(&self, k: u64) -> f64 {
        let clean = self.clean_metric_at(k);
        let eps = unit_noise(self.seed, k);
        (clean * (1.0 + self.noise * eps)).max(1e-6)
    }
}

/// Deterministic noise in `[-1, 1)` from `(seed, k)` via SplitMix64.
fn unit_noise(seed: u64, k: u64) -> f64 {
    let mut z = seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Which CNN benchmark a curve models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CnnKind {
    /// AlexNet on CIFAR-10 (Table II row 5).
    AlexNet,
    /// ResNet on CIFAR-10 (Table II row 6).
    ResNet,
}

/// Deterministic jitter in `[-1, 1)` derived from an HP hash and a salt.
fn hp_jitter(hp: &HpSetting, salt: u64) -> f64 {
    unit_noise(hp.stable_hash() ^ salt, 0x5a5a)
}

/// Builds the staged curve for a CNN configuration of Table II.
///
/// The mapping from hyper-parameters to curve parameters is synthetic but
/// monotone in the directions practitioners expect (e.g. ResNet-v2 and
/// deeper ResNets reach lower loss; oversized AlexNet learning rates hurt),
/// with deterministic per-configuration jitter so rankings are non-trivial.
pub fn cnn_curve(kind: CnnKind, hp: &HpSetting, max_steps: u64, seed: u64) -> StagedCurveModel {
    let curve_seed = seed ^ hp.stable_hash();
    match kind {
        CnnKind::AlexNet => {
            let bs = hp.float("bs");
            let lr = hp.float("lr");
            let dr = hp.float("dr");
            let de = hp.int("de") as u64;
            // lr=0.1 overshoots on AlexNet (higher final loss), lr=0.01 is
            // the sweet spot; bigger batch slightly smooths.
            let lr_penalty = if lr > 0.05 { 0.22 } else { 0.0 };
            let base_final = 0.52 + lr_penalty - 0.02 * (bs / 128.0)
                + 0.05 * hp_jitter(hp, 0xa1);
            let rate = 0.12 * (lr / 0.01).sqrt();
            let first = Stage {
                start: 0,
                plateau: base_final + 0.25,
                amp: 1.8,
                rate,
                power: 1.0,
            };
            if dr >= 1.0 {
                // No learning-rate decay: single stage all the way.
                StagedCurveModel::new(vec![first], 0.015, curve_seed)
            } else {
                // Decay at `de` drops the curve onto its true plateau.
                let at_de = first.value_at(de.min(max_steps));
                let second = Stage {
                    start: de,
                    plateau: base_final,
                    amp: (at_de - base_final) * 0.45,
                    rate: 0.3,
                    power: 1.0,
                };
                StagedCurveModel::new(vec![first, second], 0.015, curve_seed)
            }
        }
        CnnKind::ResNet => {
            let bs = hp.float("bs");
            let version = hp.int("version");
            let depth = hp.int("depth");
            let de = hp.int("de") as u64;
            // Deeper and v2 reach lower loss; depth slows early progress.
            let base_final = 0.46 - 0.04 * (version - 1) as f64
                - 0.003 * (depth - 20) as f64
                - 0.01 * (bs / 64.0)
                + 0.04 * hp_jitter(hp, 0xb2);
            let rate = 0.10 * (20.0 / depth as f64);
            let first = Stage {
                start: 0,
                plateau: base_final + 0.30,
                amp: 2.0,
                rate,
                power: 1.0,
            };
            let at_de = first.value_at(de.min(max_steps));
            let second = Stage {
                start: de,
                plateau: base_final,
                amp: (at_de - base_final) * 0.4,
                rate: 0.35,
                power: 1.0,
            };
            StagedCurveModel::new(vec![first, second], 0.02, curve_seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_hp(version: i64, depth: i64, de: i64) -> HpSetting {
        HpSetting::new()
            .with("bs", 32i64)
            .with("version", version)
            .with("depth", depth)
            .with("de", de)
    }

    #[test]
    fn single_stage_decays_monotonically() {
        let m = StagedCurveModel::new(
            vec![Stage { start: 0, plateau: 0.4, amp: 1.0, rate: 0.1, power: 1.0 }],
            0.0,
            1,
        );
        let values: Vec<f64> = (1..100).map(|k| m.metric_at(k)).collect();
        assert!(values.windows(2).all(|w| w[1] <= w[0]));
        assert!(values.last().unwrap() - 0.4 < 0.15);
    }

    #[test]
    fn stage_boundary_produces_sharp_drop() {
        let hp = resnet_hp(1, 20, 40);
        let m = cnn_curve(CnnKind::ResNet, &hp, 80, 7);
        // Right after the decay epoch the loss must fall visibly faster
        // than in the steps just before it.
        let before = m.clean_metric_at(39) - m.clean_metric_at(38);
        let after = m.clean_metric_at(41) - m.clean_metric_at(40);
        let drop = m.clean_metric_at(39) - m.clean_metric_at(42);
        assert!(drop > 0.02, "drop across boundary {drop}");
        assert!(after.abs() > before.abs());
    }

    #[test]
    fn alexnet_without_decay_is_single_stage() {
        let hp = HpSetting::new()
            .with("bs", 128i64)
            .with("lr", 0.01)
            .with("dr", 1.0)
            .with("de", 40i64);
        let m = cnn_curve(CnnKind::AlexNet, &hp, 80, 7);
        assert_eq!(m.stages().len(), 1);
        let hp2 = HpSetting::new()
            .with("bs", 128i64)
            .with("lr", 0.01)
            .with("dr", 0.95)
            .with("de", 40i64);
        let m2 = cnn_curve(CnnKind::AlexNet, &hp2, 80, 7);
        assert_eq!(m2.stages().len(), 2);
    }

    #[test]
    fn deeper_resnet_wins_eventually() {
        let shallow = cnn_curve(CnnKind::ResNet, &resnet_hp(1, 20, 40), 80, 7);
        let deep = cnn_curve(CnnKind::ResNet, &resnet_hp(2, 29, 40), 80, 7);
        assert!(deep.clean_metric_at(80) < shallow.clean_metric_at(80));
    }

    #[test]
    fn noise_is_deterministic_and_order_independent() {
        let m = cnn_curve(CnnKind::ResNet, &resnet_hp(1, 29, 60), 80, 9);
        let forward: Vec<f64> = (1..=80).map(|k| m.metric_at(k)).collect();
        let backward: Vec<f64> = (1..=80).rev().map(|k| m.metric_at(k)).collect();
        let backward_reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn metric_stays_positive() {
        let m = cnn_curve(CnnKind::AlexNet, &resnet_hp(1, 20, 40).with("lr", 0.1).with("dr", 0.95), 80, 3);
        for k in 1..=200 {
            assert!(m.metric_at(k) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "first stage must start at step 0")]
    fn misaligned_stages_rejected() {
        let _ = StagedCurveModel::new(
            vec![Stage { start: 5, plateau: 0.1, amp: 1.0, rate: 0.1, power: 1.0 }],
            0.0,
            1,
        );
    }
}
