//! Synthetic dataset generators standing in for the paper's training data
//! (Epsilon, YearPredictionMSD, CIFAR-10 and the authors' own synthetic
//! sets; >100 GB of pickles in the original).
//!
//! The generators produce in-memory feature matrices small enough to train
//! in a simulation step but structured enough that hyper-parameters matter:
//! learning rate / batch size / decay change convergence on every set, and
//! kernel choice matters on the concentric-rings SVM set.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense supervised dataset with a deterministic train/validation split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f64>,
    targets: Vec<f64>,
    rows: usize,
    dim: usize,
    train_rows: usize,
}

impl Dataset {
    /// Builds a dataset from row-major features; the first `train_fraction`
    /// of rows become the training split.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or an empty split.
    pub fn new(features: Vec<f64>, targets: Vec<f64>, dim: usize, train_fraction: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(features.len() % dim, 0, "feature length must be a multiple of dim");
        let rows = features.len() / dim;
        assert_eq!(targets.len(), rows, "target count mismatch");
        let train_rows = ((rows as f64) * train_fraction) as usize;
        assert!(
            train_rows > 0 && train_rows < rows,
            "both splits must be non-empty (rows={rows}, train={train_rows})"
        );
        Dataset { features, targets, rows, dim, train_rows }
    }

    /// Total number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of training rows (validation rows follow them).
    pub fn train_rows(&self) -> usize {
        self.train_rows
    }

    /// Number of validation rows.
    pub fn val_rows(&self) -> usize {
        self.rows - self.train_rows
    }

    /// Feature row `r`.
    pub fn x(&self, r: usize) -> &[f64] {
        &self.features[r * self.dim..(r + 1) * self.dim]
    }

    /// Target of row `r`.
    pub fn y(&self, r: usize) -> f64 {
        self.targets[r]
    }

    /// Indices of the training split.
    pub fn train_indices(&self) -> std::ops::Range<usize> {
        0..self.train_rows
    }

    /// Indices of the validation split.
    pub fn val_indices(&self) -> std::ops::Range<usize> {
        self.train_rows..self.rows
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Two overlapping Gaussian blobs with ±1 labels in `dim` dimensions —
/// the Epsilon-like binary-classification benchmark.
///
/// `separation` controls class overlap (≈2 gives a few percent Bayes
/// error). Both the class-mean offset and the noise of dimension `d` scale
/// as `(d+1)^-0.5`, so discriminative signal lives along directions of very
/// different curvature — as in Epsilon's 2000 heterogeneous features — and
/// gradient descent needs many steps to pick up the tail dimensions. That
/// slow tail is what separates learning-rate/decay configurations.
pub fn two_blobs(n: usize, dim: usize, separation: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n * dim);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        for d in 0..dim {
            let scale = (d as f64 + 1.0).powf(-0.5);
            let mean = label * separation / 2.0 * scale;
            features.push(mean + scale * normal(&mut rng));
        }
        targets.push(label);
    }
    Dataset::new(features, targets, dim, 0.8)
}

/// Concentric rings with ±1 labels: linearly inseparable, so an RBF kernel
/// beats a linear one — gives the SVM `kernel` HP a real effect.
pub fn rings(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n * dim);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let radius = if label > 0.0 { 1.0 } else { 2.2 };
        // Points on a noisy sphere of the class radius in the first two
        // dims; remaining dims are noise.
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        features.push(radius * angle.cos() + 0.15 * normal(&mut rng));
        features.push(radius * angle.sin() + 0.15 * normal(&mut rng));
        for _ in 2..dim {
            features.push(0.3 * normal(&mut rng));
        }
        targets.push(label);
    }
    Dataset::new(features, targets, dim, 0.8)
}

/// Linear regression data `y = wᵀx + ε` — the YearPredictionMSD-like
/// benchmark (audio meta-features → year).
///
/// Feature scales decay as `(d+1)^-0.6`, giving the design matrix a large
/// condition number like MSD's heterogeneous audio meta-features. Gradient
/// descent then converges slowly along the small-scale directions, so
/// within a few hundred steps the learning-rate/batch/decay choices produce
/// genuinely separated validation losses instead of all configurations
/// collapsing onto the Bayes floor. Targets are normalized to unit variance.
pub fn linear_target(n: usize, dim: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..dim).map(|_| normal(&mut rng)).collect();
    let scales: Vec<f64> = (0..dim).map(|d| (d as f64 + 1.0).powf(-0.6)).collect();
    let mut features = Vec::with_capacity(n * dim);
    let mut raw_targets = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = scales.iter().map(|s| s * normal(&mut rng)).collect();
        let y: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + noise * normal(&mut rng);
        features.extend_from_slice(&x);
        raw_targets.push(y);
    }
    let var = raw_targets.iter().map(|y| y * y).sum::<f64>() / n as f64;
    let std = var.sqrt().max(1e-9);
    let targets = raw_targets.into_iter().map(|y| y / std).collect();
    Dataset::new(features, targets, dim, 0.8)
}

/// Nonlinear regression data with interactions — the synthetic GBT
/// benchmark. Trees can exploit the axis-aligned structure.
pub fn nonlinear_target(n: usize, dim: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n * dim);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let mut y = (2.0 * x[0]).sin() + x[1].abs();
        if dim > 2 {
            y += if x[2] > 0.0 { 1.0 } else { -0.5 };
        }
        if dim > 3 {
            y += 0.5 * x[2] * x[3];
        }
        y += noise * normal(&mut rng);
        features.extend_from_slice(&x);
        targets.push(y);
    }
    Dataset::new(features, targets, dim, 0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_shapes() {
        let d = two_blobs(100, 8, 2.0, 1);
        assert_eq!(d.rows(), 100);
        assert_eq!(d.dim(), 8);
        assert_eq!(d.train_rows(), 80);
        assert_eq!(d.val_rows(), 20);
        assert_eq!(d.x(0).len(), 8);
        assert_eq!(d.train_indices().len() + d.val_indices().len(), 100);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(two_blobs(50, 4, 2.0, 7), two_blobs(50, 4, 2.0, 7));
        assert_ne!(two_blobs(50, 4, 2.0, 7), two_blobs(50, 4, 2.0, 8));
        assert_eq!(rings(50, 4, 7), rings(50, 4, 7));
        assert_eq!(linear_target(50, 4, 0.1, 7), linear_target(50, 4, 0.1, 7));
        assert_eq!(nonlinear_target(50, 4, 0.1, 7), nonlinear_target(50, 4, 0.1, 7));
    }

    #[test]
    fn blobs_are_roughly_separable() {
        let d = two_blobs(400, 8, 3.0, 2);
        // The mean of the first coordinate should differ by class.
        let (mut pos, mut neg, mut npos, mut nneg) = (0.0, 0.0, 0, 0);
        for r in 0..d.rows() {
            if d.y(r) > 0.0 {
                pos += d.x(r)[0];
                npos += 1;
            } else {
                neg += d.x(r)[0];
                nneg += 1;
            }
        }
        assert!(pos / npos as f64 > 1.0);
        assert!((neg / nneg as f64) < -1.0);
    }

    #[test]
    fn rings_radii_differ_by_class() {
        let d = rings(400, 4, 3);
        let radius = |x: &[f64]| (x[0] * x[0] + x[1] * x[1]).sqrt();
        let (mut pos, mut neg, mut npos, mut nneg) = (0.0, 0.0, 0, 0);
        for r in 0..d.rows() {
            if d.y(r) > 0.0 {
                pos += radius(d.x(r));
                npos += 1;
            } else {
                neg += radius(d.x(r));
                nneg += 1;
            }
        }
        assert!((pos / npos as f64) < 1.4);
        assert!(neg / nneg as f64 > 1.8);
    }

    #[test]
    #[should_panic(expected = "both splits")]
    fn tiny_dataset_rejected() {
        let _ = Dataset::new(vec![1.0], vec![1.0], 1, 0.8);
    }
}
