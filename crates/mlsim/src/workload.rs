//! The six evaluation workloads of Table II: algorithms, datasets,
//! optimizers, metrics and hyper-parameter grids.

use crate::hp::{expand_grid, GridAxis, HpSetting, HpValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ML algorithms benchmarked in the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Logistic regression on the Epsilon-like dataset.
    LoR,
    /// Support vector machine on synthetic rings.
    Svm,
    /// Gradient-boosted-tree regression on synthetic data.
    Gbtr,
    /// Linear regression on the YearPredictionMSD-like dataset.
    LiR,
    /// AlexNet on CIFAR-10 (staged-curve substrate).
    AlexNet,
    /// ResNet on CIFAR-10 (staged-curve substrate).
    ResNet,
}

impl Algorithm {
    /// All six benchmark algorithms in Table II order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::LoR,
            Algorithm::Svm,
            Algorithm::Gbtr,
            Algorithm::LiR,
            Algorithm::AlexNet,
            Algorithm::ResNet,
        ]
    }

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::LoR => "LoR",
            Algorithm::Svm => "SVM",
            Algorithm::Gbtr => "GBTR",
            Algorithm::LiR => "LiR",
            Algorithm::AlexNet => "AlexNet",
            Algorithm::ResNet => "ResNet",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark workload: an algorithm plus everything Table II specifies
/// about it, with the HP grid expanded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    algorithm: Algorithm,
    dataset: &'static str,
    optimizer: &'static str,
    metric: &'static str,
    max_trial_steps: u64,
    grid: Vec<HpSetting>,
}

impl Workload {
    /// Builds the Table II benchmark for one algorithm.
    ///
    /// Grid values follow Table II; the `ds` (decay-steps) axis is scaled to
    /// this harness's step counts (100/200 instead of 1000/2000, matching
    /// `max_trial_steps` = 400 instead of the paper's thousands) — see
    /// DESIGN.md.
    pub fn benchmark(algorithm: Algorithm) -> Workload {
        let ints = |vals: &[i64]| vals.iter().map(|&v| HpValue::Int(v)).collect::<Vec<_>>();
        let floats = |vals: &[f64]| vals.iter().map(|&v| HpValue::Float(v)).collect::<Vec<_>>();
        let texts = |vals: &[&str]| {
            vals.iter()
                .map(|&v| HpValue::Text(v.to_string()))
                .collect::<Vec<_>>()
        };
        match algorithm {
            Algorithm::LoR => Workload {
                algorithm,
                dataset: "epsilon-like (synthetic two-blob)",
                optimizer: "Gradient Descent",
                metric: "validation cross-entropy",
                max_trial_steps: 200,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[128, 64])),
                    GridAxis::new("lr", floats(&[1e-2, 1e-3])),
                    GridAxis::new("dr", floats(&[1.0, 0.95])),
                    GridAxis::new("ds", ints(&[50, 100])),
                ]),
            },
            Algorithm::Svm => Workload {
                algorithm,
                dataset: "synthetic rings",
                optimizer: "Gradient Descent",
                metric: "validation hinge loss",
                max_trial_steps: 400,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[128, 64])),
                    GridAxis::new("lr", floats(&[1e-2, 1e-3])),
                    GridAxis::new("dr", floats(&[1.0, 0.95])),
                    GridAxis::new("kernel", texts(&["RBF", "Linear"])),
                ]),
            },
            Algorithm::Gbtr => Workload {
                algorithm,
                dataset: "synthetic nonlinear regression",
                optimizer: "Gradient Boosting",
                metric: "validation MSE",
                max_trial_steps: 60,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[128, 64])),
                    GridAxis::new("lr", floats(&[1e-1, 1e-2])),
                    GridAxis::new("nt", ints(&[10, 15])),
                    GridAxis::new("depth", ints(&[5, 8])),
                ]),
            },
            Algorithm::LiR => Workload {
                algorithm,
                dataset: "YearPredictionMSD-like (synthetic linear)",
                optimizer: "Gradient Descent",
                metric: "validation MSE",
                max_trial_steps: 200,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[128, 64])),
                    GridAxis::new("lr", floats(&[1e-2, 1e-3])),
                    GridAxis::new("dr", floats(&[1.0, 0.95])),
                    GridAxis::new("ds", ints(&[50, 100])),
                ]),
            },
            Algorithm::AlexNet => Workload {
                algorithm,
                dataset: "CIFAR-10 (staged-curve substrate)",
                optimizer: "Adam",
                metric: "validation cross-entropy",
                max_trial_steps: 100,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[128, 64])),
                    GridAxis::new("lr", floats(&[1e-1, 1e-2])),
                    GridAxis::new("dr", floats(&[1.0, 0.95])),
                    GridAxis::new("de", ints(&[40, 60])),
                ]),
            },
            Algorithm::ResNet => Workload {
                algorithm,
                dataset: "CIFAR-10 (staged-curve substrate)",
                optimizer: "Adam",
                metric: "validation cross-entropy",
                max_trial_steps: 100,
                grid: expand_grid(&[
                    GridAxis::new("bs", ints(&[32, 64])),
                    GridAxis::new("version", ints(&[1, 2])),
                    GridAxis::new("depth", ints(&[20, 29])),
                    GridAxis::new("de", ints(&[40, 60])),
                ]),
            },
        }
    }

    /// All six Table II benchmarks.
    pub fn all_benchmarks() -> Vec<Workload> {
        Algorithm::all().into_iter().map(Workload::benchmark).collect()
    }

    /// Builds a custom workload (smaller grids / step counts for tests and
    /// focused experiments).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `max_trial_steps` is zero.
    pub fn custom(algorithm: Algorithm, max_trial_steps: u64, grid: Vec<HpSetting>) -> Workload {
        assert!(!grid.is_empty(), "grid must not be empty");
        assert!(max_trial_steps > 0, "max_trial_steps must be positive");
        let base = Workload::benchmark(algorithm);
        Workload { algorithm, max_trial_steps, grid, ..base }
    }

    /// The algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Dataset description.
    pub fn dataset(&self) -> &str {
        self.dataset
    }

    /// Optimizer name (Table II).
    pub fn optimizer(&self) -> &str {
        self.optimizer
    }

    /// Metric name (Table II); all metrics are lower-is-better losses.
    pub fn metric(&self) -> &str {
        self.metric
    }

    /// The user's `max_trial_steps` for this workload (Table I).
    pub fn max_trial_steps(&self) -> u64 {
        self.max_trial_steps
    }

    /// The expanded hyper-parameter grid (16 configurations each).
    pub fn hp_grid(&self) -> &[HpSetting] {
        &self.grid
    }

    /// Checkpoint size of a model in MB (drives checkpoint-transfer times).
    pub fn model_size_mb(&self, hp: &HpSetting) -> f64 {
        match self.algorithm {
            Algorithm::LoR | Algorithm::LiR => 5.0,
            Algorithm::Svm => {
                if hp.text("kernel") == "RBF" {
                    12.0
                } else {
                    5.0
                }
            }
            Algorithm::Gbtr => 8.0 * hp.int("depth") as f64,
            Algorithm::AlexNet => 230.0,
            Algorithm::ResNet => 30.0 + 2.0 * hp.int("depth") as f64,
        }
    }

    /// Fixed environment-restore overhead when a job redeploys (training
    /// data is staged on S3; a fresh VM needs to mount and warm up, §IV.F).
    pub fn restore_warmup_secs(&self) -> u64 {
        match self.algorithm {
            Algorithm::LoR | Algorithm::LiR => 60,
            Algorithm::Svm | Algorithm::Gbtr => 45,
            Algorithm::AlexNet | Algorithm::ResNet => 120,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_sixteen_configs() {
        let all = Workload::all_benchmarks();
        assert_eq!(all.len(), 6);
        for w in &all {
            assert_eq!(w.hp_grid().len(), 16, "{} grid", w.algorithm());
            // All ids distinct.
            let ids: std::collections::HashSet<String> =
                w.hp_grid().iter().map(HpSetting::id).collect();
            assert_eq!(ids.len(), 16);
            assert!(w.max_trial_steps() > 0);
        }
    }

    #[test]
    fn table_ii_axes_present() {
        let svm = Workload::benchmark(Algorithm::Svm);
        let hp = &svm.hp_grid()[0];
        assert!(hp.get("kernel").is_some());
        let resnet = Workload::benchmark(Algorithm::ResNet);
        let hp = &resnet.hp_grid()[0];
        assert!(hp.get("version").is_some());
        assert!(hp.get("depth").is_some());
        assert!(hp.get("de").is_some());
    }

    #[test]
    fn model_sizes_are_positive_and_hp_sensitive() {
        for w in Workload::all_benchmarks() {
            for hp in w.hp_grid() {
                assert!(w.model_size_mb(hp) > 0.0);
            }
        }
        let gbtr = Workload::benchmark(Algorithm::Gbtr);
        let small = gbtr.hp_grid().iter().find(|h| h.int("depth") == 5).unwrap();
        let big = gbtr.hp_grid().iter().find(|h| h.int("depth") == 8).unwrap();
        assert!(gbtr.model_size_mb(big) > gbtr.model_size_mb(small));
    }

    #[test]
    fn names_round_trip() {
        for alg in Algorithm::all() {
            assert!(!alg.name().is_empty());
            assert_eq!(format!("{alg}"), alg.name());
        }
    }
}
