//! Unified lazy training runs: one API over the real trainers and the
//! staged-curve substrate, with memoized history and ground-truth finals.

use crate::curve::{cnn_curve, CnnKind, StagedCurveModel};
use crate::dataset;
use crate::hp::HpSetting;
use crate::train::gbt::GbtTrainer;
use crate::train::linreg::LinRegTrainer;
use crate::train::logreg::LogRegTrainer;
use crate::train::svm::{Kernel, SvmTrainer};
use crate::train::{LrSchedule, Trainer};
use crate::workload::{Algorithm, Workload};
use spottune_market::CacheStats;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Learning-rate calibration factor from Table II values to this harness's
/// smaller synthetic datasets (keeps the *relative* HP structure intact;
/// see DESIGN.md).
fn lr_scale(algorithm: Algorithm) -> f64 {
    match algorithm {
        Algorithm::LoR => 10.0,
        Algorithm::Svm => 50.0,
        Algorithm::Gbtr => 2.0,
        Algorithm::LiR => 3.0,
        Algorithm::AlexNet | Algorithm::ResNet => 1.0,
    }
}

enum Backend {
    Real(Box<dyn Trainer + Send>),
    Curve(StagedCurveModel),
    /// Completed curve served from the process-wide memo — no trainer (or
    /// dataset) is built at all.
    Cached(Arc<[f64]>),
}

impl fmt::Debug for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Real(_) => f.write_str("Backend::Real(..)"),
            Backend::Curve(c) => write!(f, "Backend::Curve({} stages)", c.stages().len()),
            Backend::Cached(c) => write!(f, "Backend::Cached({} steps)", c.len()),
        }
    }
}

/// Cache key: a run is fully determined by (algorithm, step budget, master
/// seed, configuration id).
type CurveKey = (&'static str, u64, u64, String);

/// A shared memo tier of *completed* metric curves.
///
/// Training runs are pure functions of their key, and every campaign
/// evaluates the full curve of every configuration at least once (the
/// report's ground-truth finals advance each run to `max_trial_steps`), so
/// the first campaign over a workload pays the training cost and every
/// later campaign — other θ values, other markets, other orchestrator
/// seeds, repeated bench iterations — replays the memo. This is what lets
/// the event-driven orchestrator's wall-clock be dominated by scheduling
/// rather than by re-training identical models.
///
/// The tier is an injectable handle: cloning shares the same storage and
/// counters, so a long-running server can hand one tier to every worker
/// (and report its hit rate), while [`CurveCache::global`] serves the
/// single-process default. Curves are deterministic in their key, so
/// concurrent publishers always agree on the entry's contents.
///
/// An optional capacity bound ([`CurveCache::with_capacity`]) turns the
/// tier into an LRU: many-seed sweeps touch a distinct curve set per master
/// seed, so an unbounded memo grows linearly with the sweep — a 10⁶-campaign
/// sweep over 10⁴ seeds would otherwise retain every curve it ever
/// completed. Evictions are counted in [`CacheStats::evictions`].
#[derive(Debug, Clone, Default)]
pub struct CurveCache {
    inner: Arc<CurveCacheInner>,
}

#[derive(Debug, Default)]
struct CurveCacheInner {
    curves: Mutex<CurveStore>,
    /// Maximum resident curves; 0 means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Resident curves plus the logical clock backing LRU ordering.
#[derive(Debug, Default)]
struct CurveStore {
    entries: HashMap<CurveKey, CurveEntry>,
    /// Monotone lookup/publish counter; entries stamp their last touch.
    tick: u64,
}

#[derive(Debug)]
struct CurveEntry {
    curve: Arc<[f64]>,
    last_used: u64,
}

impl CurveStore {
    fn touch(&mut self, key: &CurveKey) -> Option<Arc<[f64]>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.curve)
        })
    }
}

impl CurveCache {
    /// Creates an empty, unbounded tier.
    pub fn new() -> Self {
        CurveCache::default()
    }

    /// Creates an empty tier retaining at most `capacity` curves, evicting
    /// the least-recently-used entry on overflow (`0` means unbounded).
    ///
    /// Eviction scans the resident entries for the oldest stamp — O(capacity)
    /// on each overflowing publish. The bound exists to cap *memory* on
    /// many-seed sweeps whose working set exceeds it; workloads that fit
    /// in `capacity` never pay the scan.
    pub fn with_capacity(capacity: usize) -> Self {
        CurveCache {
            inner: Arc::new(CurveCacheInner { capacity, ..CurveCacheInner::default() }),
        }
    }

    /// A handle to the process-wide default tier (what
    /// [`TrainingRun::new`] uses).
    pub fn global() -> CurveCache {
        static GLOBAL: OnceLock<CurveCache> = OnceLock::new();
        GLOBAL.get_or_init(CurveCache::new).clone()
    }

    /// The capacity bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Completed curve for `key`, counting the lookup as a hit or miss and
    /// refreshing the entry's recency.
    fn lookup(&self, key: &CurveKey) -> Option<Arc<[f64]>> {
        let found = self.inner.curves.lock().expect("curve cache lock").touch(key);
        match found {
            Some(curve) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(curve)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a completed curve, returning the canonical shared copy
    /// (the first publisher wins; later ones — deterministic duplicates —
    /// adopt it). Evicts the least-recently-used entry when a capacity
    /// bound would be exceeded.
    fn publish(&self, key: CurveKey, curve: &[f64]) -> Arc<[f64]> {
        let mut store = self.inner.curves.lock().expect("curve cache lock");
        if let Some(existing) = store.touch(&key) {
            return existing;
        }
        let capacity = self.inner.capacity;
        if capacity > 0 && store.entries.len() >= capacity {
            let victim = store
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty store at capacity");
            store.entries.remove(&victim);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let tick = store.tick;
        let shared: Arc<[f64]> = Arc::from(curve);
        store
            .entries
            .insert(key, CurveEntry { curve: Arc::clone(&shared), last_used: tick });
        shared
    }

    /// Number of memoized curves.
    pub fn len(&self) -> usize {
        self.inner.curves.lock().expect("curve cache lock").entries.len()
    }

    /// Whether no curve has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized curve (for memory-sensitive sweeps and tests);
    /// counters are retained.
    pub fn clear(&self) {
        self.inner.curves.lock().expect("curve cache lock").entries.clear();
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Drops every curve memoized in the process-wide tier.
pub fn clear_curve_cache() {
    CurveCache::global().clear();
}

/// A lazily-advanced training run for one (workload, configuration) pair.
///
/// `metric_at(k)` is memoized, so checkpoint/restore in the simulator never
/// recomputes or diverges. The run is deterministic in `(workload, hp,
/// seed)`.
/// EWMA factor applied to the real trainers' reported validation metric.
///
/// Mini-batch SGD wiggles at its noise floor; reporting a smoothed metric
/// (standard practice) makes "the final metric" a well-defined quantity that
/// EarlyCurve can meaningfully predict instead of a single noisy endpoint
/// sample. The curve-model backends are already smooth and stay unsmoothed.
const METRIC_SMOOTHING: f64 = 0.25;

#[derive(Debug)]
pub struct TrainingRun {
    backend: Backend,
    key: CurveKey,
    cache: CurveCache,
    history: Vec<f64>,
    max_steps: u64,
    smoothed: Option<f64>,
}

impl TrainingRun {
    /// Builds the training run for one grid point of a benchmark, memoized
    /// through the process-wide [`CurveCache::global`] tier.
    pub fn new(workload: &Workload, hp: &HpSetting, seed: u64) -> Self {
        TrainingRun::with_cache(workload, hp, seed, &CurveCache::global())
    }

    /// Builds the training run against an explicit curve-memo tier.
    ///
    /// If this exact run has already been completed through `cache`, the
    /// memoized curve is reused and no trainer or dataset is constructed;
    /// otherwise the completed curve is published back into `cache`.
    pub fn with_cache(
        workload: &Workload,
        hp: &HpSetting,
        seed: u64,
        cache: &CurveCache,
    ) -> Self {
        TrainingRun::with_cache_keyed(workload, hp, hp.id(), seed, cache)
    }

    /// [`TrainingRun::with_cache`] with the configuration's id string
    /// supplied by the caller. `hp_id` must equal `hp.id()` — the job
    /// arena caches it per slot so a campaign reset on the memo-hit path
    /// never re-formats the setting (float formatting dominated the old
    /// per-reset cost).
    pub fn with_cache_keyed(
        workload: &Workload,
        hp: &HpSetting,
        hp_id: String,
        seed: u64,
        cache: &CurveCache,
    ) -> Self {
        debug_assert_eq!(hp_id, hp.id(), "hp_id must be the setting's own id");
        let max_steps = workload.max_trial_steps();
        let key: CurveKey = (workload.algorithm().name(), max_steps, seed, hp_id);
        if let Some(curve) = cache.lookup(&key) {
            return TrainingRun {
                backend: Backend::Cached(curve),
                key,
                cache: cache.clone(),
                history: Vec::new(),
                max_steps,
                smoothed: None,
            };
        }
        // Only the trainer backends consume the derived per-configuration
        // seed; hashing the id already formatted into the key is exactly
        // `seed ^ hp.stable_hash()`.
        let run_seed = seed ^ crate::hp::fnv1a(key.3.as_bytes());
        let backend = match workload.algorithm() {
            Algorithm::LoR => {
                let data = Arc::new(dataset::two_blobs(800, 40, 1.6, seed ^ LOR_SALT));
                let schedule = LrSchedule {
                    lr0: hp.float("lr") * lr_scale(Algorithm::LoR),
                    decay_rate: hp.float("dr"),
                    decay_steps: hp.int("ds") as u64,
                };
                Backend::Real(Box::new(LogRegTrainer::new(
                    data,
                    schedule,
                    hp.int("bs") as usize,
                    run_seed,
                )))
            }
            Algorithm::Svm => {
                let data = Arc::new(dataset::rings(600, 6, seed ^ SVM_SALT));
                let schedule = LrSchedule {
                    lr0: hp.float("lr") * lr_scale(Algorithm::Svm),
                    decay_rate: hp.float("dr"),
                    decay_steps: 100,
                };
                Backend::Real(Box::new(SvmTrainer::new(
                    data,
                    Kernel::parse(hp.text("kernel")),
                    schedule,
                    hp.int("bs") as usize,
                    run_seed,
                )))
            }
            Algorithm::Gbtr => {
                let data = Arc::new(dataset::nonlinear_target(600, 6, 0.15, seed ^ GBT_SALT));
                Backend::Real(Box::new(GbtTrainer::new(
                    data,
                    hp.float("lr") * lr_scale(Algorithm::Gbtr),
                    hp.int("bs") as usize,
                    hp.int("depth") as u32,
                    hp.int("nt") as usize,
                    run_seed,
                )))
            }
            Algorithm::LiR => {
                let data = Arc::new(dataset::linear_target(800, 30, 0.5, seed ^ LIR_SALT));
                let schedule = LrSchedule {
                    lr0: hp.float("lr") * lr_scale(Algorithm::LiR),
                    decay_rate: hp.float("dr"),
                    decay_steps: hp.int("ds") as u64,
                };
                Backend::Real(Box::new(LinRegTrainer::new(
                    data,
                    schedule,
                    hp.int("bs") as usize,
                    run_seed,
                )))
            }
            Algorithm::AlexNet => {
                Backend::Curve(cnn_curve(CnnKind::AlexNet, hp, max_steps, seed))
            }
            Algorithm::ResNet => Backend::Curve(cnn_curve(CnnKind::ResNet, hp, max_steps, seed)),
        };
        TrainingRun {
            backend,
            key,
            cache: cache.clone(),
            history: Vec::new(),
            max_steps,
            smoothed: None,
        }
    }

    /// The workload's `max_trial_steps`.
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Advances to step `k` (1-based) if needed and returns the metric at
    /// `k`. Clamps at `max_steps`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn metric_at(&mut self, k: u64) -> f64 {
        assert!(k > 0, "steps are 1-based");
        let k = k.min(self.max_steps);
        while (self.history.len() as u64) < k {
            let next = self.history.len() as u64 + 1;
            let m = match &mut self.backend {
                Backend::Real(t) => {
                    let raw = t.step();
                    let s = match self.smoothed {
                        None => raw,
                        Some(prev) => METRIC_SMOOTHING * raw + (1.0 - METRIC_SMOOTHING) * prev,
                    };
                    self.smoothed = Some(s);
                    s
                }
                Backend::Curve(c) => c.metric_at(next),
                Backend::Cached(curve) => curve[(next - 1) as usize],
            };
            self.history.push(m);
        }
        if (self.history.len() as u64) == self.max_steps
            && !matches!(self.backend, Backend::Cached(_))
        {
            // Completed for the first time: publish the full curve into
            // this run's memo tier and switch onto it, so later
            // `metric_at` calls never touch the cache lock again.
            let curve = self.cache.publish(self.key.clone(), &self.history);
            self.backend = Backend::Cached(curve);
        }
        self.history[(k - 1) as usize]
    }

    /// Metric history `[step 1 ..= steps_computed]` computed so far.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Ground-truth final metric at `max_trial_steps` (advances the run).
    pub fn final_metric(&mut self) -> f64 {
        self.metric_at(self.max_steps)
    }
}

/// Fully evaluates a benchmark: the ground-truth final metric of every grid
/// configuration, in grid order. Used by the oracle ranking evaluation
/// (paper Fig. 8(c) accuracy) and the baselines.
pub fn ground_truth_finals(workload: &Workload, seed: u64) -> Vec<f64> {
    ground_truth_finals_with_cache(workload, seed, &CurveCache::global())
}

/// [`ground_truth_finals`] against an explicit curve-memo tier.
pub fn ground_truth_finals_with_cache(
    workload: &Workload,
    seed: u64,
    cache: &CurveCache,
) -> Vec<f64> {
    workload
        .hp_grid()
        .iter()
        .map(|hp| TrainingRun::with_cache(workload, hp, seed, cache).final_metric())
        .collect()
}

// Distinct dataset-seed salts per benchmark.
const LOR_SALT: u64 = 0x10f2;
const SVM_SALT: u64 = 0x53f3;
const GBT_SALT: u64 = 0x6b77;
const LIR_SALT: u64 = 0x1177;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic_and_memoized() {
        let w = Workload::benchmark(Algorithm::LoR);
        let hp = w.hp_grid()[0].clone();
        let mut a = TrainingRun::new(&w, &hp, 42);
        let mut b = TrainingRun::new(&w, &hp, 42);
        assert_eq!(a.metric_at(10), b.metric_at(10));
        // Re-querying earlier steps hits the memo.
        let at5 = a.metric_at(5);
        assert_eq!(a.metric_at(5), at5);
        assert_eq!(a.history().len(), 10);
    }

    #[test]
    fn metric_clamps_at_max_steps() {
        let w = Workload::benchmark(Algorithm::ResNet);
        let hp = w.hp_grid()[0].clone();
        let mut run = TrainingRun::new(&w, &hp, 1);
        let last = run.metric_at(10_000);
        assert_eq!(run.history().len(), w.max_trial_steps() as usize);
        assert_eq!(last, run.final_metric());
    }

    #[test]
    fn all_benchmarks_produce_decreasing_losses() {
        for w in Workload::all_benchmarks() {
            let hp = w.hp_grid()[0].clone();
            let mut run = TrainingRun::new(&w, &hp, 7);
            let early = run.metric_at(2);
            let late = run.final_metric();
            assert!(
                late < early,
                "{}: loss should fall ({early} -> {late})",
                w.algorithm()
            );
        }
    }

    #[test]
    fn completed_runs_are_memoized_and_identical() {
        let w = Workload::benchmark(Algorithm::LiR);
        let hp = w.hp_grid()[1].clone();
        let mut first = TrainingRun::new(&w, &hp, 99);
        let full: Vec<f64> = (1..=w.max_trial_steps()).map(|k| first.metric_at(k)).collect();
        let mut replayed = TrainingRun::new(&w, &hp, 99);
        assert!(
            format!("{replayed:?}").contains("Cached"),
            "second run must come from the curve memo"
        );
        let replay: Vec<f64> = (1..=w.max_trial_steps()).map(|k| replayed.metric_at(k)).collect();
        assert_eq!(full, replay, "memoized curve must be bit-identical");
    }

    #[test]
    fn injected_tier_is_isolated_and_counts() {
        let w = Workload::benchmark(Algorithm::Gbtr);
        let hp = w.hp_grid()[2].clone();
        let tier = CurveCache::new();
        let mut first = TrainingRun::with_cache(&w, &hp, 4321, &tier);
        let a = first.final_metric();
        assert_eq!(tier.stats(), CacheStats { hits: 0, misses: 1, evictions: 0 });
        assert_eq!(tier.len(), 1);
        let mut second = TrainingRun::with_cache(&w, &hp, 4321, &tier);
        assert!(format!("{second:?}").contains("Cached"));
        assert_eq!(second.final_metric(), a);
        assert_eq!(tier.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert!((tier.stats().hit_rate() - 0.5).abs() < 1e-12);
        // A fresh tier knows nothing about the other tier's curves.
        let other = CurveCache::new();
        let third = TrainingRun::with_cache(&w, &hp, 4321, &other);
        assert!(!format!("{third:?}").contains("Cached"));
        assert_eq!(other.stats().misses, 1);
        // Shared handles see the same storage.
        assert_eq!(tier.clone().len(), 1);
        tier.clear();
        assert!(tier.is_empty());
    }

    #[test]
    fn bounded_tier_evicts_least_recently_used() {
        let w = Workload::benchmark(Algorithm::LiR);
        let grid = w.hp_grid();
        let tier = CurveCache::with_capacity(2);
        assert_eq!(tier.capacity(), 2);
        // Complete three distinct runs; the third insert overflows.
        for hp in grid.iter().take(3) {
            TrainingRun::with_cache(&w, hp, 7, &tier).final_metric();
        }
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.stats().evictions, 1);
        // The first-completed (least recently used) curve was the victim:
        // replaying it misses, while the last two still hit.
        let miss0 = TrainingRun::with_cache(&w, &grid[0], 7, &tier);
        assert!(!format!("{miss0:?}").contains("Cached"));
        let hit2 = TrainingRun::with_cache(&w, &grid[2], 7, &tier);
        assert!(format!("{hit2:?}").contains("Cached"));
        // A recency refresh protects an old entry: touch curve 2, publish a
        // new one, and curve 2 must survive the eviction.
        drop(hit2);
        TrainingRun::with_cache(&w, &grid[3], 7, &tier).final_metric();
        let hit2_again = TrainingRun::with_cache(&w, &grid[2], 7, &tier);
        assert!(format!("{hit2_again:?}").contains("Cached"));
        // Unbounded tiers never evict.
        assert_eq!(CurveCache::new().capacity(), 0);
    }

    #[test]
    fn ground_truth_finals_are_distinct() {
        let w = Workload::benchmark(Algorithm::ResNet);
        let finals = ground_truth_finals(&w, 3);
        assert_eq!(finals.len(), 16);
        let distinct: std::collections::HashSet<i64> =
            finals.iter().map(|f| (f * 1e9) as i64).collect();
        assert!(distinct.len() > 8, "finals too degenerate: {finals:?}");
    }
}
