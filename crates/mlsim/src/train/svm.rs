//! Mini-batch sub-gradient SVM with linear or random-Fourier-feature RBF
//! kernels (the SVM benchmark; `kernel ∈ {RBF, Linear}` in Table II).

use super::{sample_batch, LinearModel, LrSchedule, Trainer};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// SVM kernel choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Raw feature space.
    Linear,
    /// Gaussian RBF approximated with random Fourier features.
    Rbf {
        /// Number of random features.
        features: usize,
        /// Kernel bandwidth γ in `exp(-γ‖x−y‖²)`.
        gamma: f64,
    },
}

impl Kernel {
    /// Parses the Table-II `kernel` hyper-parameter text.
    ///
    /// # Panics
    ///
    /// Panics on an unknown kernel name.
    pub fn parse(name: &str) -> Kernel {
        match name {
            "Linear" => Kernel::Linear,
            "RBF" => Kernel::Rbf { features: 128, gamma: 0.5 },
            other => panic!("unknown SVM kernel {other:?}"),
        }
    }
}

/// Random Fourier feature map `z(x) = sqrt(2/D) cos(Ωx + β)` approximating
/// the RBF kernel (Rahimi & Recht).
#[derive(Debug, Clone)]
struct FourierMap {
    omega: Vec<f64>, // D × dim, row-major
    beta: Vec<f64>,  // D
    dim: usize,
    features: usize,
}

impl FourierMap {
    fn new(dim: usize, features: usize, gamma: f64, rng: &mut StdRng) -> Self {
        // ω ~ N(0, 2γ I) per RBF spectral density.
        let sigma = (2.0 * gamma).sqrt();
        let mut omega = Vec::with_capacity(features * dim);
        for _ in 0..features * dim {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            omega.push(sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos());
        }
        let beta = (0..features)
            .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
            .collect();
        FourierMap { omega, beta, dim, features }
    }

    fn transform(&self, x: &[f64]) -> Vec<f64> {
        let scale = (2.0 / self.features as f64).sqrt();
        (0..self.features)
            .map(|j| {
                let row = &self.omega[j * self.dim..(j + 1) * self.dim];
                let dot: f64 = row.iter().zip(x).map(|(a, b)| a * b).sum();
                scale * (dot + self.beta[j]).cos()
            })
            .collect()
    }
}

/// SVM trainer with hinge-loss metric.
#[derive(Debug)]
pub struct SvmTrainer {
    data: Arc<Dataset>,
    model: LinearModel,
    map: Option<FourierMap>,
    schedule: LrSchedule,
    batch: usize,
    l2: f64,
    steps: u64,
    rng: StdRng,
}

impl SvmTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(
        data: Arc<Dataset>,
        kernel: Kernel,
        schedule: LrSchedule,
        batch: usize,
        seed: u64,
    ) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let (map, model_dim) = match kernel {
            Kernel::Linear => (None, data.dim()),
            Kernel::Rbf { features, gamma } => (
                Some(FourierMap::new(data.dim(), features, gamma, &mut rng)),
                features,
            ),
        };
        SvmTrainer {
            data,
            model: LinearModel::zeros(model_dim),
            map,
            schedule,
            batch,
            l2: 1e-3,
            steps: 0,
            rng,
        }
    }

    fn features(&self, r: usize) -> Vec<f64> {
        let x = self.data.x(r);
        match &self.map {
            None => x.to_vec(),
            Some(map) => map.transform(x),
        }
    }

    /// Mean hinge loss on the validation split.
    pub fn validation_hinge(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for r in self.data.val_indices() {
            let s = self.model.score(&self.features(r));
            total += (1.0 - self.data.y(r) * s).max(0.0);
            n += 1;
        }
        total / n as f64
    }
}

impl Trainer for SvmTrainer {
    fn step(&mut self) -> f64 {
        let lr = self.schedule.at(self.steps);
        let idx = sample_batch(&mut self.rng, self.data.train_rows(), self.batch);
        let scale = 1.0 / self.batch as f64;
        for r in idx {
            let x = self.features(r);
            let y = self.data.y(r);
            let margin = y * self.model.score(&x);
            let g = if margin < 1.0 { -y * scale } else { 0.0 };
            self.model.gd_update(&x, g, lr, self.l2 * scale);
        }
        self.steps += 1;
        self.validation_hinge()
    }

    fn steps_done(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{rings, two_blobs};

    #[test]
    fn kernel_parse() {
        assert_eq!(Kernel::parse("Linear"), Kernel::Linear);
        assert!(matches!(Kernel::parse("RBF"), Kernel::Rbf { .. }));
    }

    #[test]
    #[should_panic(expected = "unknown SVM kernel")]
    fn bad_kernel_panics() {
        let _ = Kernel::parse("poly9");
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let data = Arc::new(two_blobs(600, 10, 3.0, 21));
        let mut t = SvmTrainer::new(data, Kernel::Linear, LrSchedule::constant(0.2), 64, 5);
        let mut last = f64::INFINITY;
        for _ in 0..150 {
            last = t.step();
        }
        assert!(last < 0.5, "hinge {last}");
    }

    #[test]
    fn rbf_beats_linear_on_rings() {
        let data = Arc::new(rings(600, 4, 22));
        let mut linear =
            SvmTrainer::new(Arc::clone(&data), Kernel::Linear, LrSchedule::constant(0.2), 64, 5);
        let mut rbf = SvmTrainer::new(
            data,
            Kernel::Rbf { features: 128, gamma: 0.8 },
            LrSchedule::constant(0.2),
            64,
            5,
        );
        let (mut l, mut r) = (0.0, 0.0);
        for _ in 0..200 {
            l = linear.step();
            r = rbf.step();
        }
        assert!(
            r < 0.75 * l,
            "rbf {r} should clearly beat linear {l} on rings"
        );
    }
}
