//! Mini-batch gradient-descent linear regression (the LiR benchmark).

use super::{sample_batch, LinearModel, LrSchedule, Trainer};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Linear-regression trainer with mean-squared-error metric.
#[derive(Debug)]
pub struct LinRegTrainer {
    data: Arc<Dataset>,
    model: LinearModel,
    schedule: LrSchedule,
    batch: usize,
    steps: u64,
    rng: StdRng,
}

impl LinRegTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(data: Arc<Dataset>, schedule: LrSchedule, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let dim = data.dim();
        LinRegTrainer {
            data,
            model: LinearModel::zeros(dim),
            schedule,
            batch,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// MSE on the validation split.
    pub fn validation_mse(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for r in self.data.val_indices() {
            let e = self.model.score(self.data.x(r)) - self.data.y(r);
            total += e * e;
            n += 1;
        }
        total / n as f64
    }
}

impl Trainer for LinRegTrainer {
    fn step(&mut self) -> f64 {
        let lr = self.schedule.at(self.steps);
        let idx = sample_batch(&mut self.rng, self.data.train_rows(), self.batch);
        let scale = 1.0 / self.batch as f64;
        for r in idx {
            let x: Vec<f64> = self.data.x(r).to_vec();
            let e = self.model.score(&x) - self.data.y(r);
            self.model.gd_update(&x, 2.0 * e * scale, lr, 0.0);
        }
        self.steps += 1;
        self.validation_mse()
    }

    fn steps_done(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::linear_target;

    #[test]
    fn recovers_linear_signal() {
        let data = Arc::new(linear_target(800, 8, 0.1, 3));
        let mut t = LinRegTrainer::new(data, LrSchedule::constant(0.05), 64, 9);
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            last = t.step();
        }
        assert_eq!(t.steps_done(), 200);
        // Residual should approach the noise floor (0.1² = 0.01).
        assert!(last < 0.1, "val mse {last}");
    }

    #[test]
    fn small_lr_is_slower() {
        let data = Arc::new(linear_target(800, 8, 0.1, 3));
        let mut fast = LinRegTrainer::new(Arc::clone(&data), LrSchedule::constant(0.05), 64, 9);
        let mut slow = LinRegTrainer::new(data, LrSchedule::constant(0.001), 64, 9);
        let (mut f, mut s) = (0.0, 0.0);
        for _ in 0..60 {
            f = fast.step();
            s = slow.step();
        }
        assert!(f < s, "fast {f} slow {s}");
    }
}
