//! Real gradient-descent / gradient-boosting trainers.
//!
//! These produce *genuine* validation-metric curves — the substrate
//! EarlyCurve fits — for the four non-CNN benchmarks of Table II
//! (logistic regression, SVM, GBT regression, linear regression). The two
//! CNN benchmarks use the staged synthetic curve model in
//! [`crate::curve`] instead (see DESIGN.md for the substitution rationale).

pub mod gbt;
pub mod linreg;
pub mod logreg;
pub mod svm;

use rand::rngs::StdRng;
use rand::RngExt;

/// A training process advanced one validation step at a time.
///
/// All metrics are losses: lower is better, matching the paper's
/// validation-loss / MSE / hinge metrics (Table II).
pub trait Trainer {
    /// Runs one training step and returns the validation metric after it.
    fn step(&mut self) -> f64;

    /// Number of steps completed so far.
    fn steps_done(&self) -> u64;
}

/// Staircase exponential learning-rate schedule
/// `lr(k) = lr0 · dr^(floor(k / ds))` — the `lr`/`dr`/`ds` hyper-parameters
/// of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Initial learning rate (`lr`).
    pub lr0: f64,
    /// Decay rate per decay period (`dr`), 1.0 disables decay.
    pub decay_rate: f64,
    /// Steps between decays (`ds`).
    pub decay_steps: u64,
}

impl LrSchedule {
    /// Constant learning rate.
    pub fn constant(lr0: f64) -> Self {
        LrSchedule { lr0, decay_rate: 1.0, decay_steps: 1 }
    }

    /// Learning rate at step `k` (0-based).
    pub fn at(&self, k: u64) -> f64 {
        self.lr0 * self.decay_rate.powi((k / self.decay_steps.max(1)) as i32)
    }
}

/// Samples `batch` indices uniformly from `0..n` (with replacement).
pub(crate) fn sample_batch(rng: &mut StdRng, n: usize, batch: usize) -> Vec<usize> {
    (0..batch).map(|_| rng.random_range(0..n)).collect()
}

/// A linear model `s(x) = wᵀx + b` shared by the GD trainers.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LinearModel {
    pub w: Vec<f64>,
    pub b: f64,
}

impl LinearModel {
    pub fn zeros(dim: usize) -> Self {
        LinearModel { w: vec![0.0; dim], b: 0.0 }
    }

    pub fn score(&self, x: &[f64]) -> f64 {
        self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b
    }

    /// Applies `w -= lr * (g_scale * x + l2 * w)`, `b -= lr * g_scale`.
    pub fn gd_update(&mut self, x: &[f64], g_scale: f64, lr: f64, l2: f64) {
        for (w, &xi) in self.w.iter_mut().zip(x) {
            *w -= lr * (g_scale * xi + l2 * *w);
        }
        self.b -= lr * g_scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_staircases() {
        let s = LrSchedule { lr0: 0.1, decay_rate: 0.5, decay_steps: 10 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(9), 0.1);
        assert_eq!(s.at(10), 0.05);
        assert_eq!(s.at(25), 0.025);
        let c = LrSchedule::constant(0.2);
        assert_eq!(c.at(1000), 0.2);
    }

    #[test]
    fn batch_sampling_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = sample_batch(&mut rng, 10, 100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&i| i < 10));
        // Covers more than one index.
        assert!(b.iter().collect::<std::collections::HashSet<_>>().len() > 3);
    }

    #[test]
    fn linear_model_scores_and_updates() {
        let mut m = LinearModel::zeros(2);
        m.w = vec![1.0, -1.0];
        m.b = 0.5;
        assert_eq!(m.score(&[2.0, 1.0]), 1.5);
        m.gd_update(&[2.0, 1.0], 1.0, 0.1, 0.0);
        assert!((m.score(&[2.0, 1.0]) - (1.5 - 0.1 * (4.0 + 1.0 + 1.0))).abs() < 1e-12);
    }
}
