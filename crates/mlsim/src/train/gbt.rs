//! Gradient-boosted regression trees (the GBTR benchmark).
//!
//! Each training step fits one depth-limited regression tree to the current
//! residuals on a bootstrap subsample of `bs` rows and adds it with
//! shrinkage `lr`. Table II's `depth` bounds the tree depth directly. The
//! `nt` hyper-parameter ("#trees") is reinterpreted as the number of
//! candidate split thresholds (histogram bins) evaluated per feature — the
//! closest per-step capacity knob in a fixed-step-count harness, since
//! SpotTune fixes `max_trial_steps` per workload while `nt` varies per
//! configuration (substitution documented in DESIGN.md).

use super::{sample_batch, Trainer};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A node of a binary regression tree stored in a flat arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A depth-limited regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to `(rows, residuals)` of `data` with the given depth
    /// bound and number of candidate thresholds per feature.
    fn fit(
        data: &Dataset,
        rows: &[usize],
        residuals: &[f64],
        max_depth: u32,
        n_thresholds: usize,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        let targets: Vec<f64> = rows.iter().map(|&r| residuals[r]).collect();
        tree.build(data, rows, &targets, max_depth, n_thresholds);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        rows: &[usize],
        targets: &[f64],
        depth: u32,
        n_thresholds: usize,
    ) -> usize {
        let mean = targets.iter().sum::<f64>() / targets.len().max(1) as f64;
        if depth == 0 || rows.len() < 8 {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Greedy best split over features × candidate thresholds.
        let base_sse: f64 = targets.iter().map(|t| (t - mean) * (t - mean)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for feat in 0..data.dim() {
            let mut vals: Vec<f64> = rows.iter().map(|&r| data.x(r)[feat]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            for k in 1..=n_thresholds {
                let q = k as f64 / (n_thresholds + 1) as f64;
                let threshold = vals[((vals.len() - 1) as f64 * q) as usize];
                let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
                for (i, &r) in rows.iter().enumerate() {
                    if data.x(r)[feat] <= threshold {
                        ls += targets[i];
                        lc += 1;
                    } else {
                        rs += targets[i];
                        rc += 1;
                    }
                }
                if lc < 4 || rc < 4 {
                    continue;
                }
                let (lm, rm) = (ls / lc as f64, rs / rc as f64);
                let mut sse = 0.0;
                for (i, &r) in rows.iter().enumerate() {
                    let m = if data.x(r)[feat] <= threshold { lm } else { rm };
                    sse += (targets[i] - m) * (targets[i] - m);
                }
                if sse < base_sse * 0.999 && best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((feat, threshold, sse));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (mut lrows, mut ltargets, mut rrows, mut rtargets) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (i, &r) in rows.iter().enumerate() {
            if data.x(r)[feature] <= threshold {
                lrows.push(r);
                ltargets.push(targets[i]);
            } else {
                rrows.push(r);
                rtargets.push(targets[i]);
            }
        }
        let left = self.build(data, &lrows, &ltargets, depth - 1, n_thresholds);
        let right = self.build(data, &rrows, &rtargets, depth - 1, n_thresholds);
        self.nodes.push(Node::Split { feature, threshold, left, right });
        self.nodes.len() - 1
    }

    /// Predicts the value for a feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (size diagnostic).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true after fitting).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Gradient-boosting trainer with MSE metric.
#[derive(Debug)]
pub struct GbtTrainer {
    data: Arc<Dataset>,
    /// Current ensemble prediction per dataset row.
    predictions: Vec<f64>,
    shrinkage: f64,
    subsample: usize,
    max_depth: u32,
    n_thresholds: usize,
    steps: u64,
    rng: StdRng,
}

impl GbtTrainer {
    /// Creates a trainer: `shrinkage` = Table II `lr`, `subsample` = `bs`,
    /// `max_depth` = `depth`, `n_thresholds` = `nt`.
    ///
    /// # Panics
    ///
    /// Panics if `subsample` or `n_thresholds` is zero.
    pub fn new(
        data: Arc<Dataset>,
        shrinkage: f64,
        subsample: usize,
        max_depth: u32,
        n_thresholds: usize,
        seed: u64,
    ) -> Self {
        assert!(subsample > 0, "subsample size must be positive");
        assert!(n_thresholds > 0, "need at least one candidate threshold");
        let rows = data.rows();
        GbtTrainer {
            data,
            predictions: vec![0.0; rows],
            shrinkage,
            subsample,
            max_depth,
            n_thresholds,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// MSE of the current ensemble on the validation split.
    pub fn validation_mse(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for r in self.data.val_indices() {
            let e = self.predictions[r] - self.data.y(r);
            total += e * e;
            n += 1;
        }
        total / n as f64
    }
}

impl Trainer for GbtTrainer {
    fn step(&mut self) -> f64 {
        // Residuals of the squared loss are plain prediction errors.
        let residuals: Vec<f64> = (0..self.data.rows())
            .map(|r| self.data.y(r) - self.predictions[r])
            .collect();
        let rows = sample_batch(&mut self.rng, self.data.train_rows(), self.subsample);
        let tree = RegressionTree::fit(
            &self.data,
            &rows,
            &residuals,
            self.max_depth,
            self.n_thresholds,
        );
        for r in 0..self.data.rows() {
            self.predictions[r] += self.shrinkage * tree.predict(self.data.x(r));
        }
        self.steps += 1;
        self.validation_mse()
    }

    fn steps_done(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::nonlinear_target;

    #[test]
    fn boosting_reduces_mse() {
        let data = Arc::new(nonlinear_target(600, 5, 0.1, 31));
        let mut t = GbtTrainer::new(data, 0.2, 128, 4, 10, 7);
        let first = t.step();
        let mut last = first;
        for _ in 0..40 {
            last = t.step();
        }
        assert!(last < first * 0.5, "first {first} last {last}");
    }

    #[test]
    fn deeper_trees_fit_faster() {
        let data = Arc::new(nonlinear_target(600, 5, 0.1, 31));
        let mut shallow = GbtTrainer::new(Arc::clone(&data), 0.2, 128, 1, 10, 7);
        let mut deep = GbtTrainer::new(data, 0.2, 128, 5, 10, 7);
        let (mut s, mut d) = (0.0, 0.0);
        for _ in 0..25 {
            s = shallow.step();
            d = deep.step();
        }
        assert!(d < s, "deep {d} vs shallow {s}");
    }

    #[test]
    fn tree_prediction_partitions_space() {
        let data = nonlinear_target(400, 4, 0.05, 5);
        let rows: Vec<usize> = (0..300).collect();
        let residuals: Vec<f64> = (0..data.rows()).map(|r| data.y(r)).collect();
        let tree = RegressionTree::fit(&data, &rows, &residuals, 3, 8);
        assert!(!tree.is_empty());
        assert!(tree.len() >= 3, "expected at least one split, got {}", tree.len());
        // Predictions are finite and vary across inputs.
        let preds: Vec<f64> = (0..10).map(|r| tree.predict(data.x(r))).collect();
        assert!(preds.iter().all(|p| p.is_finite()));
        let distinct = preds
            .iter()
            .map(|p| (p * 1e9) as i64)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn determinism() {
        let data = Arc::new(nonlinear_target(300, 4, 0.1, 9));
        let mut a = GbtTrainer::new(Arc::clone(&data), 0.1, 64, 3, 8, 2);
        let mut b = GbtTrainer::new(data, 0.1, 64, 3, 8, 2);
        for _ in 0..5 {
            assert_eq!(a.step(), b.step());
        }
    }
}
