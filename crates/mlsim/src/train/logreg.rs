//! Mini-batch gradient-descent logistic regression (the LoR benchmark).

use super::{sample_batch, LinearModel, LrSchedule, Trainer};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Logistic-regression trainer with ±1 labels and cross-entropy metric.
#[derive(Debug)]
pub struct LogRegTrainer {
    data: Arc<Dataset>,
    model: LinearModel,
    schedule: LrSchedule,
    batch: usize,
    l2: f64,
    steps: u64,
    rng: StdRng,
}

impl LogRegTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(data: Arc<Dataset>, schedule: LrSchedule, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let dim = data.dim();
        LogRegTrainer {
            data,
            model: LinearModel::zeros(dim),
            schedule,
            batch,
            l2: 1e-4,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Mean cross-entropy (logistic loss) on the validation split.
    pub fn validation_loss(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for r in self.data.val_indices() {
            let s = self.model.score(self.data.x(r));
            let y = self.data.y(r); // ±1
            // softplus(-y·s), stable.
            let m = -y * s;
            total += if m > 30.0 { m } else { (1.0 + m.exp()).ln() };
            n += 1;
        }
        total / n as f64
    }
}

impl Trainer for LogRegTrainer {
    fn step(&mut self) -> f64 {
        let lr = self.schedule.at(self.steps);
        let idx = sample_batch(&mut self.rng, self.data.train_rows(), self.batch);
        let scale = 1.0 / self.batch as f64;
        for r in idx {
            let x = self.data.x(r);
            let y = self.data.y(r);
            let s = self.model.score(x);
            // d softplus(-y s)/ds = -y σ(-y s)
            let m = -y * s;
            let sig = if m >= 0.0 {
                1.0 / (1.0 + (-m).exp())
            } else {
                let e = m.exp();
                e / (1.0 + e)
            };
            let g = -y * sig * scale;
            // Borrow x by value copy to satisfy the borrow checker.
            let x_owned: Vec<f64> = x.to_vec();
            self.model.gd_update(&x_owned, g, lr, self.l2 * scale);
        }
        self.steps += 1;
        self.validation_loss()
    }

    fn steps_done(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::two_blobs;

    fn run(schedule: LrSchedule, batch: usize, steps: usize) -> Vec<f64> {
        let data = Arc::new(two_blobs(600, 10, 2.5, 11));
        let mut t = LogRegTrainer::new(data, schedule, batch, 5);
        (0..steps).map(|_| t.step()).collect()
    }

    #[test]
    fn loss_decreases_markedly() {
        let curve = run(LrSchedule::constant(0.5), 64, 120);
        let early: f64 = curve[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = curve[curve.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late < early * 0.7, "early {early} late {late}");
        assert!(late < 0.5, "converged loss {late}");
    }

    #[test]
    fn different_hyper_parameters_give_different_curves() {
        let fast = run(LrSchedule::constant(0.5), 128, 60);
        let slow = run(LrSchedule::constant(0.005), 128, 60);
        // The slow learner must be visibly behind at the end.
        assert!(slow.last().unwrap() > fast.last().unwrap());
    }

    #[test]
    fn decay_freezes_progress_eventually() {
        let decayed = run(
            LrSchedule { lr0: 0.5, decay_rate: 0.1, decay_steps: 10 },
            64,
            100,
        );
        // After several decades of decay the lr is ~0; the curve plateaus.
        let tail_delta = (decayed[99] - decayed[80]).abs();
        assert!(tail_delta < 0.05, "tail still moving by {tail_delta}");
    }

    #[test]
    fn determinism() {
        assert_eq!(
            run(LrSchedule::constant(0.1), 64, 10),
            run(LrSchedule::constant(0.1), 64, 10)
        );
    }
}
