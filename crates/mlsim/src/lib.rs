//! # spottune-mlsim
//!
//! ML-training substrate for the SpotTune reproduction: the six Table-II
//! benchmark workloads with their 16-point hyper-parameter grids, synthetic
//! datasets, *real* gradient-descent / gradient-boosting trainers producing
//! genuine validation-loss curves, a staged synthetic curve model for the
//! CNN benchmarks, and the ground-truth performance model behind the
//! paper's online-profiled `M[inst][hp]` matrix.
//!
//! ```
//! use spottune_mlsim::prelude::*;
//!
//! let workload = Workload::benchmark(Algorithm::LoR);
//! assert_eq!(workload.hp_grid().len(), 16);
//! let mut run = TrainingRun::new(&workload, &workload.hp_grid()[0], 42);
//! let loss_at_20 = run.metric_at(20);
//! assert!(loss_at_20.is_finite());
//! ```

pub mod curve;
pub mod dataset;
pub mod hp;
pub mod perf;
pub mod runner;
pub mod train;
pub mod workload;

pub use hp::{HpSetting, HpValue};
pub use perf::PerfModel;
pub use runner::{CurveCache, TrainingRun};
pub use workload::{Algorithm, Workload};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::curve::{cnn_curve, CnnKind, Stage, StagedCurveModel};
    pub use crate::hp::{expand_grid, GridAxis, HpSetting, HpValue};
    pub use crate::perf::PerfModel;
    pub use crate::runner::{
        ground_truth_finals, ground_truth_finals_with_cache, CurveCache, TrainingRun,
    };
    pub use crate::train::{LrSchedule, Trainer};
    pub use crate::workload::{Algorithm, Workload};
}
