//! Ground-truth performance model: seconds-per-step of each (instance,
//! workload, configuration) triple.
//!
//! The paper profiles `M[inst][hp]` online and justifies this with the small
//! step-to-step variation it measures (COV < 0.1, §IV.A.5) and the
//! observation that throughput does **not** scale linearly with price
//! (Fig. 6). This model reproduces both: per-step samples have ~5 % COV, and
//! each (instance-type, algorithm) pair carries a deterministic efficiency
//! factor so the price/performance order is non-monotonic.

use crate::hp::HpSetting;
use crate::workload::{Algorithm, Workload};
use rand::rngs::StdRng;
use rand::RngExt;
use spottune_market::InstanceType;

/// Relative COV of per-step time samples (paper measures < 0.1).
pub const STEP_TIME_COV: f64 = 0.05;

/// Exponent of vCPU scaling: throughput ∝ vcpus^α (sub-linear; parallel
/// efficiency losses).
pub const VCPU_EXPONENT: f64 = 0.55;

/// Base work per step in abstract seconds (time on a 1-throughput machine).
fn base_work(algorithm: Algorithm) -> f64 {
    match algorithm {
        Algorithm::LoR => 180.0,
        Algorithm::Svm => 100.0,
        Algorithm::Gbtr => 400.0,
        Algorithm::LiR => 160.0,
        Algorithm::AlexNet => 250.0,
        Algorithm::ResNet => 500.0,
    }
}

/// Configuration-dependent work multiplier.
fn hp_multiplier(algorithm: Algorithm, hp: &HpSetting) -> f64 {
    let bs_factor = |bs: f64, reference: f64| 0.75 + 0.25 * (bs / reference);
    match algorithm {
        Algorithm::LoR | Algorithm::LiR | Algorithm::Svm => bs_factor(hp.float("bs"), 128.0),
        Algorithm::Gbtr => {
            bs_factor(hp.float("bs"), 128.0)
                * (hp.int("depth") as f64 / 5.0)
                * (0.8 + 0.2 * hp.int("nt") as f64 / 10.0)
        }
        Algorithm::AlexNet => bs_factor(hp.float("bs"), 128.0),
        Algorithm::ResNet => bs_factor(hp.float("bs"), 64.0) * (hp.int("depth") as f64 / 20.0),
    }
}

/// Deterministic per-(instance, algorithm) efficiency in `[0.75, 1.25]`.
///
/// Models memory-bandwidth / NUMA / generation differences between instance
/// families: paying more does not always buy proportional speed (Fig. 6).
fn efficiency(instance: &InstanceType, algorithm: Algorithm) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in instance.name().bytes().chain(algorithm.name().bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    0.75 + 0.5 * unit
}

/// The ground-truth performance oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModel;

impl PerfModel {
    /// Creates the model.
    pub fn new() -> Self {
        PerfModel
    }

    /// Expected seconds-per-step of running `hp` of `workload` on
    /// `instance` (the true value behind the paper's `M[inst][hp]`).
    pub fn true_spe(&self, instance: &InstanceType, workload: &Workload, hp: &HpSetting) -> f64 {
        let throughput =
            (instance.vcpus() as f64).powf(VCPU_EXPONENT) * efficiency(instance, workload.algorithm());
        base_work(workload.algorithm()) * hp_multiplier(workload.algorithm(), hp) / throughput
    }

    /// One noisy per-step time sample (what online profiling observes).
    pub fn sample_spe(
        &self,
        instance: &InstanceType,
        workload: &Workload,
        hp: &HpSetting,
        rng: &mut StdRng,
    ) -> f64 {
        Self::sample_with_mean(self.true_spe(instance, workload, hp), rng)
    }

    /// Draws one sample around a precomputed [`Self::true_spe`] mean —
    /// identical distribution and RNG consumption to [`Self::sample_spe`],
    /// for callers (the orchestrator's hot loop) that cache the means per
    /// (instance, configuration) instead of re-deriving them every step.
    pub fn sample_with_mean(mean: f64, rng: &mut StdRng) -> f64 {
        // Clamped multiplicative Gaussian noise, COV ≈ STEP_TIME_COV.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean * (1.0 + STEP_TIME_COV * n.clamp(-3.0, 3.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use rand::SeedableRng;
    use spottune_market::instance;
    use spottune_market::stats::cov;

    fn resnet() -> (Workload, HpSetting) {
        let w = Workload::benchmark(Algorithm::ResNet);
        let hp = w.hp_grid()[0].clone();
        (w, hp)
    }

    #[test]
    fn more_vcpus_are_faster_within_a_family() {
        let model = PerfModel::new();
        let (w, hp) = resnet();
        let r4l = instance::by_name("r4.large").unwrap(); // 2 vCPU
        let r4x = instance::by_name("r4.xlarge").unwrap(); // 4 vCPU
        let r42 = instance::by_name("r4.2xlarge").unwrap(); // 8 vCPU
        let a = model.true_spe(&r4l, &w, &hp);
        let b = model.true_spe(&r4x, &w, &hp);
        let c = model.true_spe(&r42, &w, &hp);
        assert!(a > b && b > c, "spe should fall with vCPUs: {a} {b} {c}");
    }

    #[test]
    fn price_performance_is_not_monotonic() {
        // Fig. 6's observation: sort the catalog by on-demand price; the
        // SPE sequence must NOT be strictly decreasing for every workload.
        let model = PerfModel::new();
        let mut catalog = instance::catalog();
        catalog.sort_by(|x, y| x.on_demand_price().partial_cmp(&y.on_demand_price()).unwrap());
        let mut any_inversion = false;
        for w in Workload::all_benchmarks() {
            let hp = w.hp_grid()[0].clone();
            let spes: Vec<f64> = catalog.iter().map(|i| model.true_spe(i, &w, &hp)).collect();
            if spes.windows(2).any(|p| p[1] > p[0]) {
                any_inversion = true;
            }
        }
        assert!(any_inversion, "expected at least one price/perf inversion");
    }

    #[test]
    fn sample_cov_is_below_paper_threshold() {
        let model = PerfModel::new();
        let (w, hp) = resnet();
        let inst = instance::by_name("r3.xlarge").unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..500)
            .map(|_| model.sample_spe(&inst, &w, &hp, &mut rng))
            .collect();
        let c = cov(&samples);
        assert!(c < 0.1, "COV {c} must be < 0.1 (paper §IV.A.5)");
        assert!(c > 0.01, "COV {c} suspiciously small — noise missing?");
    }

    #[test]
    fn hp_multipliers_affect_cost() {
        let model = PerfModel::new();
        let w = Workload::benchmark(Algorithm::ResNet);
        let shallow = w.hp_grid().iter().find(|h| h.int("depth") == 20).unwrap();
        let deep = w.hp_grid().iter().find(|h| h.int("depth") == 29).unwrap();
        let inst = instance::by_name("r3.xlarge").unwrap();
        assert!(model.true_spe(&inst, &w, deep) > model.true_spe(&inst, &w, shallow));
    }

    #[test]
    fn resnet_runtime_is_hours_scale() {
        // Sanity: total ResNet training (80 epochs) lands in the paper's
        // single-digit-hours JCT range on mid-size instances.
        let model = PerfModel::new();
        let (w, hp) = resnet();
        let inst = instance::by_name("r3.xlarge").unwrap();
        let total_h = model.true_spe(&inst, &w, &hp) * 80.0 / 3600.0;
        assert!(total_h > 2.0 && total_h < 12.0, "total {total_h} h");
    }
}
