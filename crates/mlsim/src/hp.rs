//! Hyper-parameter settings and grid expansion.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One hyper-parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HpValue {
    /// Integer-valued HP (batch size, #layers, …).
    Int(i64),
    /// Real-valued HP (learning rate, decay rate, …).
    Float(f64),
    /// Categorical HP (kernel function, …).
    Text(String),
}

impl fmt::Display for HpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpValue::Int(v) => write!(f, "{v}"),
            HpValue::Float(v) => write!(f, "{v}"),
            HpValue::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for HpValue {
    fn from(v: i64) -> Self {
        HpValue::Int(v)
    }
}

impl From<f64> for HpValue {
    fn from(v: f64) -> Self {
        HpValue::Float(v)
    }
}

impl From<&str> for HpValue {
    fn from(v: &str) -> Self {
        HpValue::Text(v.to_string())
    }
}

/// An ordered set of named hyper-parameter values — one point of the search
/// grid (one "model" in the paper's Fig. 2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HpSetting {
    entries: Vec<(String, HpValue)>,
}

impl HpSetting {
    /// Creates an empty setting.
    pub fn new() -> Self {
        HpSetting::default()
    }

    /// Appends a named value, builder-style.
    pub fn with(mut self, key: &str, value: impl Into<HpValue>) -> Self {
        self.entries.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&HpValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Integer value of `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key is missing or not an integer.
    pub fn int(&self, key: &str) -> i64 {
        match self.get(key) {
            Some(HpValue::Int(v)) => *v,
            other => panic!("hp {key:?} expected int, got {other:?}"),
        }
    }

    /// Float value of `key` (integer values are widened).
    ///
    /// # Panics
    ///
    /// Panics if the key is missing or textual.
    pub fn float(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(HpValue::Float(v)) => *v,
            Some(HpValue::Int(v)) => *v as f64,
            other => panic!("hp {key:?} expected float, got {other:?}"),
        }
    }

    /// Text value of `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key is missing or not textual.
    pub fn text(&self, key: &str) -> &str {
        match self.get(key) {
            Some(HpValue::Text(v)) => v,
            other => panic!("hp {key:?} expected text, got {other:?}"),
        }
    }

    /// Stable compact identifier, e.g. `bs=128,lr=0.01,kernel=RBF`.
    pub fn id(&self) -> String {
        self.entries
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The key/value pairs in insertion order.
    pub fn entries(&self) -> &[(String, HpValue)] {
        &self.entries
    }

    /// Stable 64-bit hash of the setting (FNV-1a over the id), used to
    /// derive per-configuration seeds.
    pub fn stable_hash(&self) -> u64 {
        fnv1a(self.id().as_bytes())
    }
}

/// FNV-1a over `bytes` — the hash [`HpSetting::stable_hash`] applies to
/// the formatted id. Exposed so callers that already hold the id string
/// can hash it without re-formatting the setting.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl fmt::Display for HpSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// One axis of a hyper-parameter grid: a key plus candidate values.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAxis {
    /// HP name.
    pub key: String,
    /// Candidate values.
    pub values: Vec<HpValue>,
}

impl GridAxis {
    /// Creates an axis from any value list.
    pub fn new(key: &str, values: Vec<HpValue>) -> Self {
        GridAxis { key: key.to_string(), values }
    }
}

/// Cartesian product of all axes, in row-major (last axis fastest) order.
///
/// ```
/// use spottune_mlsim::hp::{expand_grid, GridAxis, HpValue};
///
/// let grid = expand_grid(&[
///     GridAxis::new("bs", vec![HpValue::Int(64), HpValue::Int(128)]),
///     GridAxis::new("lr", vec![HpValue::Float(0.01), HpValue::Float(0.001)]),
/// ]);
/// assert_eq!(grid.len(), 4);
/// assert_eq!(grid[0].id(), "bs=64,lr=0.01");
/// assert_eq!(grid[3].id(), "bs=128,lr=0.001");
/// ```
pub fn expand_grid(axes: &[GridAxis]) -> Vec<HpSetting> {
    let mut out = vec![HpSetting::new()];
    for axis in axes {
        assert!(!axis.values.is_empty(), "grid axis {:?} is empty", axis.key);
        let mut next = Vec::with_capacity(out.len() * axis.values.len());
        for partial in &out {
            for v in &axis.values {
                next.push(partial.clone().with(&axis.key, v.clone()));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let hp = HpSetting::new()
            .with("bs", 128i64)
            .with("lr", 0.01)
            .with("kernel", "RBF");
        assert_eq!(hp.int("bs"), 128);
        assert_eq!(hp.float("lr"), 0.01);
        assert_eq!(hp.float("bs"), 128.0); // int widens
        assert_eq!(hp.text("kernel"), "RBF");
        assert_eq!(hp.id(), "bs=128,lr=0.01,kernel=RBF");
        assert!(hp.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn wrong_type_panics() {
        let hp = HpSetting::new().with("lr", 0.01);
        let _ = hp.int("lr");
    }

    #[test]
    fn grid_expansion_is_cartesian_and_ordered() {
        let grid = expand_grid(&[
            GridAxis::new("a", vec![HpValue::Int(1), HpValue::Int(2)]),
            GridAxis::new("b", vec![HpValue::Int(3), HpValue::Int(4), HpValue::Int(5)]),
        ]);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0].id(), "a=1,b=3");
        assert_eq!(grid[1].id(), "a=1,b=4");
        assert_eq!(grid[5].id(), "a=2,b=5");
    }

    #[test]
    fn stable_hash_distinguishes_settings() {
        let a = HpSetting::new().with("bs", 128i64);
        let b = HpSetting::new().with("bs", 64i64);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), a.clone().stable_hash());
    }

    #[test]
    fn empty_grid_is_single_empty_setting() {
        let grid = expand_grid(&[]);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].id(), "");
    }
}
