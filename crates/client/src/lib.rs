//! # spottune-client
//!
//! Blocking wire client for the `spottune-serve` TCP service: one
//! request per line, one reply per request (a campaign response or a
//! typed error frame), plus the `{"stats":true}` / `{"shutdown":true}`
//! admin frames.
//!
//! ## Deterministic retry
//!
//! Transient refusals (`overloaded`, `throttled`, `draining`) and
//! connection failures are retried with exponential backoff and jitter.
//! The backoff schedule is a *pure function* of
//! `(retry seed, request id, attempt)` via [`spottune_market::seeding`],
//! so a replayed run waits the exact same milliseconds at every step —
//! retries never make a campaign sweep less reproducible. Permanent
//! refusals (`malformed`, `rejected`, `deadline-exceeded`) surface
//! immediately.
//!
//! ```no_run
//! use spottune_client::{Client, RetryPolicy};
//! # use spottune_core::CampaignRequest;
//! # fn demo(request: CampaignRequest) -> Result<(), spottune_client::ClientError> {
//! let mut client = Client::connect("127.0.0.1:7915")?
//!     .with_retry(RetryPolicy::default().with_seed(42));
//! let response = client.run_campaign(&request, None)?;
//! println!("{}", response.report.summary());
//! # Ok(())
//! # }
//! ```

use spottune_core::wire::{self, ErrorFrame, ServerFrame};
use spottune_core::{CampaignRequest, CampaignResponse};
use spottune_market::seeding;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, sending or receiving failed (after retries).
    Io(std::io::Error),
    /// The server's reply did not decode.
    Wire(wire::WireError),
    /// The server answered with a non-retryable error frame, or retries
    /// ran out on a retryable one.
    Server(ErrorFrame),
    /// The server closed the connection without answering (after
    /// retries).
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "undecodable server frame: {e}"),
            ClientError::Server(frame) => {
                write!(f, "server refused ({}): {}", frame.kind, frame.message)
            }
            ClientError::Disconnected => f.write_str("server closed the connection mid-request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Deterministic seeded retry: exponential backoff with jitter whose
/// schedule is a pure function of `(seed, request id, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, the first included; `1` disables
    /// retry entirely.
    pub max_attempts: u32,
    /// Backoff cap doubles from this base: attempt `n` waits up to
    /// `base_delay_ms << n` milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single wait.
    pub max_delay_ms: u64,
    /// Jitter seed; two clients with the same seed (and request ids)
    /// produce bit-identical schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, base_delay_ms: 20, max_delay_ms: 2_000, seed: 0 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Builder-style jitter-seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style attempt-budget override (minimum 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The wait before retry number `attempt` (1-based: attempt 0 is the
    /// first try and never waits) of request `request_id`. Pure:
    /// `backoff_ms(s, id, n)` is the same on every call, machine and
    /// replay. Jitter spans `[cap/2, cap)` — enough spread to break
    /// thundering herds, bounded below so backoff still backs off.
    pub fn backoff_ms(&self, request_id: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let doubled = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX));
        let cap = doubled.min(self.max_delay_ms).max(1);
        let u = seeding::unit_draw(self.seed, &[request_id, u64::from(attempt)]);
        let jittered = (cap as f64) * (0.5 + 0.5 * u);
        jittered as u64
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { reader, writer: stream })
    }

    /// Sends one frame and reads one reply line. `Ok(None)` means the
    /// server closed the connection.
    fn round_trip(&mut self, frame: &str) -> std::io::Result<Option<String>> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Ok(Some(line.trim().to_string()))
    }
}

/// Blocking client for one `spottune-serve` endpoint. Reconnects lazily
/// after connection failures (subject to the retry budget).
pub struct Client {
    addr: String,
    retry: RetryPolicy,
    conn: Option<Connection>,
}

impl Client {
    /// Connects with the default retry policy.
    ///
    /// # Errors
    ///
    /// Returns the connect error; nothing is retried at construction.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let conn = Connection::open(addr)?;
        Ok(Client { addr: addr.to_string(), retry: RetryPolicy::default(), conn: Some(conn) })
    }

    /// Builder-style retry-policy override.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn conn(&mut self) -> std::io::Result<&mut Connection> {
        if self.conn.is_none() {
            self.conn = Some(Connection::open(&self.addr)?);
        }
        match self.conn.as_mut() {
            Some(conn) => Ok(conn),
            // Unreachable by construction; reported as an error rather
            // than panicking on a connection path.
            None => Err(std::io::Error::other("connection unavailable")),
        }
    }

    /// One attempt: send the frame, read the reply. A `Connected` error
    /// or server close drops the cached connection so the next attempt
    /// reconnects.
    fn attempt(&mut self, frame: &str) -> Result<ServerFrame, ClientError> {
        let outcome = match self.conn() {
            Ok(conn) => conn.round_trip(frame),
            Err(e) => Err(e),
        };
        match outcome {
            Ok(Some(line)) => wire::decode_server_frame(&line).map_err(ClientError::Wire),
            Ok(None) => {
                self.conn = None;
                Err(ClientError::Disconnected)
            }
            Err(e) => {
                self.conn = None;
                Err(ClientError::Io(e))
            }
        }
    }

    /// Whether an attempt's failure is worth a retry.
    fn retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) | ClientError::Disconnected => true,
            ClientError::Server(frame) => frame.kind.is_retryable(),
            ClientError::Wire(_) => false,
        }
    }

    /// Runs one campaign: sends the request (with an optional queue
    /// deadline in milliseconds) and waits for its reply, retrying
    /// transient failures per the [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with the final error frame when the
    /// server refuses; [`ClientError::Io`]/[`ClientError::Disconnected`]
    /// when the connection dies and the retry budget runs out.
    pub fn run_campaign(
        &mut self,
        request: &CampaignRequest,
        deadline_ms: Option<u64>,
    ) -> Result<CampaignResponse, ClientError> {
        let frame = wire::encode_request_frame(request, deadline_ms);
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.retry.max_attempts {
            let wait = self.retry.backoff_ms(request.id, attempt);
            if wait > 0 {
                std::thread::sleep(Duration::from_millis(wait));
            }
            match self.attempt(&frame) {
                Ok(ServerFrame::Response(response)) => return Ok(response),
                Ok(ServerFrame::Stats(_)) => {
                    return Err(ClientError::Wire(wire::WireError::from_message(
                        "stats frame answering a campaign request",
                    )))
                }
                Ok(ServerFrame::Error(frame)) => {
                    let error = ClientError::Server(frame);
                    if !Client::retryable(&error) {
                        return Err(error);
                    }
                    last = Some(error);
                }
                Err(error) => {
                    if !Client::retryable(&error) {
                        return Err(error);
                    }
                    last = Some(error);
                }
            }
        }
        Err(last.unwrap_or(ClientError::Disconnected))
    }

    /// Runs a sweep request-by-request (strict request/reply keeps frame
    /// attribution trivial), returning one verdict per request in
    /// request order. Individual refusals do not abort the sweep.
    pub fn run_sweep(
        &mut self,
        requests: &[CampaignRequest],
        deadline_ms: Option<u64>,
    ) -> Vec<Result<CampaignResponse, ClientError>> {
        requests.iter().map(|r| self.run_campaign(r, deadline_ms)).collect()
    }

    /// Fetches the server's flattened counter snapshot.
    ///
    /// # Errors
    ///
    /// Connection errors (after retries) or an unexpected frame shape.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.admin(&wire::encode_stats_request())
    }

    /// Asks the server to drain gracefully; the reply is a final stats
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Connection errors (after retries) or an unexpected frame shape.
    pub fn shutdown_server(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.admin(&wire::encode_shutdown_request())
    }

    fn admin(&mut self, frame: &str) -> Result<Vec<(String, u64)>, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.retry.max_attempts {
            let wait = self.retry.backoff_ms(0, attempt);
            if wait > 0 {
                std::thread::sleep(Duration::from_millis(wait));
            }
            match self.attempt(frame) {
                Ok(ServerFrame::Stats(fields)) => return Ok(fields),
                Ok(ServerFrame::Response(_)) => {
                    return Err(ClientError::Wire(wire::WireError::from_message(
                        "campaign response answering an admin frame",
                    )))
                }
                Ok(ServerFrame::Error(frame)) => {
                    let error = ClientError::Server(frame);
                    if !Client::retryable(&error) {
                        return Err(error);
                    }
                    last = Some(error);
                }
                Err(error) => {
                    if !Client::retryable(&error) {
                        return Err(error);
                    }
                    last = Some(error);
                }
            }
        }
        Err(last.unwrap_or(ClientError::Disconnected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default().with_seed(42);
        let replay = RetryPolicy::default().with_seed(42);
        for id in [0u64, 7, u64::MAX] {
            assert_eq!(policy.backoff_ms(id, 0), 0, "first attempt never waits");
            for attempt in 1..8 {
                let a = policy.backoff_ms(id, attempt);
                let b = replay.backoff_ms(id, attempt);
                assert_eq!(a, b, "same seed must replay bit-identically");
                let cap = (policy.base_delay_ms << (attempt - 1)).min(policy.max_delay_ms);
                assert!(a >= cap / 2, "jitter bounded below: {a} < {}/2", cap);
                assert!(a <= cap, "jitter bounded above: {a} > {cap}");
            }
        }
        // Different seeds and different request ids decorrelate.
        let other = RetryPolicy::default().with_seed(43);
        let same_seed_schedules: Vec<u64> = (1..6).map(|n| policy.backoff_ms(1, n)).collect();
        let other_seed: Vec<u64> = (1..6).map(|n| other.backoff_ms(1, n)).collect();
        let other_id: Vec<u64> = (1..6).map(|n| policy.backoff_ms(2, n)).collect();
        assert_ne!(same_seed_schedules, other_seed);
        assert_ne!(same_seed_schedules, other_id);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay_ms: u64::MAX / 2,
            max_delay_ms: 1_000,
            seed: 9,
        };
        // Huge attempt numbers shift past 64 bits; the schedule must
        // saturate at the cap, not wrap.
        for attempt in [1, 2, 63, 64, 65, 1_000] {
            let wait = policy.backoff_ms(5, attempt);
            assert!(wait <= 1_000, "cap respected at attempt {attempt}: {wait}");
            assert!(wait >= 500, "still backing off at attempt {attempt}: {wait}");
        }
    }

    #[test]
    fn retryability_follows_the_error_kind_registry() {
        use spottune_core::wire::ErrorKind;
        let server = |kind: ErrorKind| {
            ClientError::Server(ErrorFrame { id: Some(1), kind, message: String::new() })
        };
        assert!(Client::retryable(&server(ErrorKind::Overloaded)));
        assert!(Client::retryable(&server(ErrorKind::Throttled)));
        assert!(Client::retryable(&server(ErrorKind::Draining)));
        assert!(!Client::retryable(&server(ErrorKind::Malformed)));
        assert!(!Client::retryable(&server(ErrorKind::Rejected)));
        assert!(!Client::retryable(&server(ErrorKind::DeadlineExceeded)));
        assert!(Client::retryable(&ClientError::Disconnected));
        assert!(Client::retryable(&ClientError::Io(std::io::Error::other("gone"))));
        assert!(!Client::retryable(&ClientError::Wire(
            spottune_core::wire::WireError::from_message("bad frame")
        )));
    }
}
