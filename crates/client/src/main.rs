//! `spottune-client`: CLI for the `spottune-serve` TCP service.
//!
//! ```text
//! spottune-client [--addr HOST:PORT] stats
//! spottune-client [--addr HOST:PORT] shutdown
//! spottune-client [--addr HOST:PORT] run [--count N] [--seed S]
//!                 [--deadline-ms D] [--retry-seed S]
//! ```
//!
//! `run` drives N tiny benchmark campaigns through the wire and prints
//! one summary line per response — a loopback smoke check, not a
//! production workload driver. Exits 0 only if every request succeeded.

use spottune_client::{Client, RetryPolicy};
use spottune_core::CampaignRequest;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;

fn usage(program: &str) -> String {
    format!(
        "usage: {program} [--addr HOST:PORT] <stats|shutdown|run> \
         [--count N] [--seed S] [--deadline-ms D] [--retry-seed S]"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let program = args.first().map(String::as_str).unwrap_or("spottune-client");
    let mut addr = "127.0.0.1:7915".to_string();
    let mut command: Option<String> = None;
    let mut count: u64 = 4;
    let mut seed: u64 = 42;
    let mut deadline_ms: Option<u64> = None;
    let mut retry_seed: u64 = 0;
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> String {
            match iter.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{name} needs a value\n{}", usage(program));
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--count" => count = parse(&value("--count"), program),
            "--seed" => seed = parse(&value("--seed"), program),
            "--deadline-ms" => deadline_ms = Some(parse(&value("--deadline-ms"), program)),
            "--retry-seed" => retry_seed = parse(&value("--retry-seed"), program),
            "--help" | "-h" => {
                println!("{}", usage(program));
                return;
            }
            cmd if command.is_none() && !cmd.starts_with('-') => command = Some(cmd.to_string()),
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage(program));
                std::process::exit(2);
            }
        }
    }
    let command = match command {
        Some(c) => c,
        None => {
            eprintln!("{}", usage(program));
            std::process::exit(2);
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(client) => client.with_retry(RetryPolicy::default().with_seed(retry_seed)),
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let status = match command.as_str() {
        "stats" => print_fields(client.stats()),
        "shutdown" => print_fields(client.shutdown_server()),
        "run" => run_smoke(&mut client, count, seed, deadline_ms),
        other => {
            eprintln!("unknown command {other:?}\n{}", usage(program));
            2
        }
    };
    std::process::exit(status);
}

fn print_fields(
    fields: Result<Vec<(String, u64)>, spottune_client::ClientError>,
) -> i32 {
    match fields {
        Ok(fields) => {
            for (name, value) in fields {
                println!("{name}={value}");
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn run_smoke(client: &mut Client, count: u64, seed: u64, deadline_ms: Option<u64>) -> i32 {
    let base = Workload::benchmark(Algorithm::LoR);
    let workload = Workload::custom(Algorithm::LoR, 15, base.hp_grid()[..2].to_vec());
    let requests: Vec<CampaignRequest> = (0..count)
        .map(|i| CampaignRequest {
            id: i,
            approach: spottune_core::Approach::SpotTune { theta: 0.7 },
            workload: workload.clone(),
            scenario: MarketScenario::from_days(1, 42),
            seed: seed.wrapping_add(i),
            estimator: EstimatorSpec::default(),
        })
        .collect();
    let mut failures = 0;
    for (request, outcome) in requests.iter().zip(client.run_sweep(&requests, deadline_ms)) {
        match outcome {
            Ok(response) => println!("{} {}", response.id, response.report.summary()),
            Err(e) => {
                eprintln!("request {} failed: {e}", request.id);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

fn parse<T: std::str::FromStr>(text: &str, program: &str) -> T {
    match text.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("malformed numeric argument {text:?}\n{}", usage(program));
            std::process::exit(2);
        }
    }
}
