//! Explore the synthetic spot markets and train a revocation predictor.
//!
//! ```text
//! cargo run --release --example market_explorer
//! ```
//!
//! Prints per-market statistics (average discount vs on-demand, price
//! changes, empirical revoke-within-hour frequency) and then trains the
//! logistic baseline predictor per market, reporting held-out quality.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spottune::prelude::*;

fn main() {
    let days = 12;
    let pool = MarketPool::standard(SimDur::from_days(days), 42);
    let mut rng = StdRng::seed_from_u64(7);

    println!("{:<12} {:>8} {:>8} {:>10} {:>12}", "market", "avg/od", "max/od", "changes/d", "p(revoke|1h)");
    for market in pool.iter() {
        let trace = market.trace();
        let od = market.instance().on_demand_price();
        let avg = trace.avg_over(SimTime::ZERO, SimTime::from_days(days));
        let (_, hi) = trace.min_max();
        let changes =
            trace.changes_in(SimTime::ZERO, SimTime::from_days(days)) as f64 / days as f64;
        // Empirical revoke-within-hour frequency under random max prices.
        let trials = 2000;
        let hits = (0..trials)
            .filter(|_| {
                let t = SimTime::from_mins(rng.random_range(120..(days * 1440 - 120)));
                let delta = rng.random_range(0.00001..0.2);
                market.revoked_within_hour(t, market.price_at(t) + delta)
            })
            .count();
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>10.0} {:>12.3}",
            market.instance().name(),
            avg / od,
            hi / od,
            changes,
            hits as f64 / trials as f64
        );
    }

    // Train the fast logistic predictor per market and evaluate held-out.
    println!("\ntraining logistic revocation predictors (days 0-9, eval 9-12)...");
    let cfg = TrainConfig { epochs: 4, seed: 1, ..TrainConfig::default() };
    let set = MarketPredictorSet::train(
        PredictorKind::Logistic,
        &pool,
        SimTime::from_hours(2),
        SimTime::from_days(9),
        SimDur::from_mins(20),
        &cfg,
    );
    let mut probs = Vec::new();
    let mut labels = Vec::new();
    for market in pool.iter() {
        let samples = build_dataset(
            market,
            SimTime::from_days(9),
            SimTime::from_days(12) - SimDur::from_hours(2),
            SimDur::from_mins(30),
            DeltaPolicy::UniformRandom,
            99,
        );
        for s in &samples {
            probs.push(set.predict_sample(market.instance().name(), s).expect("trained"));
            labels.push(s.label);
        }
    }
    let eval = BinaryEval::score(&probs, &labels, 0.5);
    println!(
        "held-out: accuracy {:.3}, F1 {:.3} over {} samples",
        eval.accuracy(),
        eval.f1(),
        eval.total()
    );
}
