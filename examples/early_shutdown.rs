//! Early shutdown in action: EarlyCurve watches a two-stage ResNet training
//! curve, detects the learning-rate stage boundary, and predicts the final
//! loss from 70 % of the steps — against the SLAQ single-stage baseline.
//!
//! ```text
//! cargo run --release --example early_shutdown
//! ```

use spottune::prelude::*;

fn main() {
    let workload = Workload::benchmark(Algorithm::ResNet);
    let hp = workload
        .hp_grid()
        .iter()
        .find(|h| h.int("de") == 40 && h.int("depth") == 29)
        .expect("grid contains de=40 depth=29");
    println!("configuration: {}", hp.id());

    let max = workload.max_trial_steps();
    let theta = 0.7;
    let observed = (theta * max as f64).ceil() as u64;

    let mut run = TrainingRun::new(&workload, hp, 42);
    let mut earlycurve = EarlyCurve::new(EarlyCurveConfig::default());
    let mut slaq = Slaq::new();
    for k in 1..=observed {
        let metric = run.metric_at(k);
        earlycurve.push(k, metric);
        slaq.push(k, metric);
        if k % 10 == 0 {
            println!("  step {k:>3}: validation loss {metric:.4}");
        }
    }

    let boundaries = earlycurve.boundaries();
    println!("\ndetected stage boundaries at steps: {boundaries:?} (decay epoch was 40)");

    let truth = run.final_metric();
    let pred_ec = earlycurve.predict_final(max).expect("enough points");
    let pred_slaq = slaq.predict_final(max).expect("enough points");
    println!("\nafter observing {observed}/{max} steps (θ = {theta}):");
    println!("  EarlyCurve predicts final loss {pred_ec:.4} (error {:+.4})", pred_ec - truth);
    println!("  SLAQ       predicts final loss {pred_slaq:.4} (error {:+.4})", pred_slaq - truth);
    println!("  actual final loss              {truth:.4}");
    assert!(
        (pred_ec - truth).abs() < (pred_slaq - truth).abs(),
        "the staged fit should beat the single-stage fit on a two-stage curve"
    );
    println!(
        "\nSpotTune would release this model's VM {:.0}% early and only keep it if it ranks top-mcnt.",
        100.0 * (1.0 - theta)
    );
}
