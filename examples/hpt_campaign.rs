//! A full HPT cost study: SpotTune vs the Single-Spot baselines on two
//! benchmark workloads — a miniature of the paper's Fig. 7.
//!
//! ```text
//! cargo run --release --example hpt_campaign
//! ```

use spottune::prelude::*;

fn main() {
    let pool = MarketPool::standard(SimDur::from_days(12), 42);

    for algorithm in [Algorithm::Svm, Algorithm::Gbtr] {
        let workload = Workload::benchmark(algorithm);
        println!("\n==== {} ====", workload.algorithm());

        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let mut reports = Vec::new();
        for theta in [0.7, 1.0] {
            let cfg = SpotTuneConfig::new(theta, 3).with_seed(42);
            reports.push(Orchestrator::new(cfg, workload.clone(), pool.clone(), &oracle).run());
        }
        for kind in [SingleSpotKind::Cheapest, SingleSpotKind::Fastest] {
            reports.push(run_single_spot(kind, &workload, &pool, SpotTuneConfig::default().start, 42));
        }

        let reference = reports[0].clone();
        for r in &reports {
            println!(
                "{:<28} cost=${:<7.3} jct={:<8} pcr(norm)={:.2}",
                r.approach,
                r.cost,
                format!("{}", r.jct),
                r.pcr_normalized(&reference)
            );
        }
        // SpotTune must win the cost comparison on every workload (Fig 7a).
        let best_cost = reports
            .iter()
            .map(|r| r.cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best_cost, reports[0].cost, "SpotTune(0.7) should be cheapest");
    }
}
