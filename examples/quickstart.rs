//! Quickstart: run one SpotTune campaign end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the standard six-market spot pool, takes the logistic-regression
//! benchmark (16 hyper-parameter configurations), and lets SpotTune tune it
//! with early shutdown at θ = 0.7, printing the cost/JCT report and the
//! selected configurations.

use spottune::prelude::*;

fn main() {
    // Six spot markets (Table III instances) with 12 days of price history.
    let pool = MarketPool::standard(SimDur::from_days(12), 42);

    // The workload: LoR with its Table-II grid of 16 configurations.
    let workload = Workload::benchmark(Algorithm::LoR);
    println!(
        "tuning {} ({} configurations, {} steps each)",
        workload.algorithm(),
        workload.hp_grid().len(),
        workload.max_trial_steps()
    );

    // SpotTune with the paper's default θ = 0.7, keeping the top 3 models.
    let config = SpotTuneConfig::new(0.7, 3).with_seed(42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let report = Orchestrator::new(config, workload.clone(), pool, &oracle).run();

    println!("\n{}", report.summary());
    println!("\nselected configurations (best predicted first):");
    for &i in &report.selected {
        println!(
            "  #{i}: {}  predicted final = {:.4}, true final = {:.4}",
            workload.hp_grid()[i].id(),
            report.predicted_finals[i],
            report.true_finals[i],
        );
    }
    println!(
        "\n{:.1}% of all training steps ran on refunded (free) spot capacity.",
        100.0 * report.free_step_fraction()
    );
}
