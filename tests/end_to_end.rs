//! Cross-crate integration tests: full SpotTune campaigns against the
//! simulated cloud, exercising the whole stack (markets → provider →
//! orchestrator → EarlyCurve selection → reports).

use spottune::prelude::*;

fn small(alg: Algorithm, steps: u64, n: usize) -> Workload {
    let base = Workload::benchmark(alg);
    Workload::custom(alg, steps, base.hp_grid()[..n].to_vec())
}

fn pool() -> MarketPool {
    MarketPool::standard(SimDur::from_days(10), 42)
}

#[test]
fn campaign_is_deterministic() {
    let pool = pool();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = small(Algorithm::LoR, 50, 4);
    let run = || {
        let cfg = SpotTuneConfig::new(0.6, 2).with_seed(11);
        Orchestrator::new(cfg, w.clone(), pool.clone(), &oracle).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the identical report");
}

#[test]
fn billing_identity_holds_across_approaches() {
    let pool = pool();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = small(Algorithm::Svm, 60, 4);
    let st = Orchestrator::new(SpotTuneConfig::new(0.7, 2).with_seed(3), w.clone(), pool.clone(), &oracle)
        .run();
    assert!((st.gross - st.cost - st.refunded).abs() < 1e-9);
    for kind in [SingleSpotKind::Cheapest, SingleSpotKind::Fastest] {
        let b = run_single_spot(kind, &w, &pool, SimTime::from_hours(2), 3);
        assert!((b.gross - b.cost - b.refunded).abs() < 1e-9);
        assert_eq!(b.refunded, 0.0, "baselines never harvest refunds");
    }
}

#[test]
fn spottune_beats_baselines_on_cost() {
    // The headline Fig. 7(a) property on a reduced workload. All three
    // approaches are submitted at the same instant (SpotTune's default
    // start) — launching the baselines in the cheap overnight window would
    // compare campaigns under different market conditions.
    let pool = pool();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = small(Algorithm::Gbtr, 40, 6);
    let start = SpotTuneConfig::default().start;
    let st = Orchestrator::new(SpotTuneConfig::new(0.7, 2).with_seed(5), w.clone(), pool.clone(), &oracle)
        .run();
    let cheap = run_single_spot(SingleSpotKind::Cheapest, &w, &pool, start, 5);
    let fast = run_single_spot(SingleSpotKind::Fastest, &w, &pool, start, 5);
    assert!(
        st.cost < cheap.cost && st.cost < fast.cost,
        "SpotTune {} vs cheapest {} / fastest {}",
        st.cost,
        cheap.cost,
        fast.cost
    );
    // And its JCT sits between the two baselines (§IV.B.1).
    assert!(st.jct < cheap.jct, "st {} cheap {}", st.jct, cheap.jct);
}

#[test]
fn theta_one_selection_is_exact() {
    let pool = pool();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = small(Algorithm::ResNet, 60, 6);
    let report =
        Orchestrator::new(SpotTuneConfig::new(1.0, 3).with_seed(8), w, pool, &oracle).run();
    // Without early shutdown, predictions are observed finals: top-3 must
    // contain the true best.
    assert!(report.top3_hit());
}

#[test]
fn timeline_protocol_is_well_formed() {
    // Every revocation is preceded by a notice-checkpoint for that job;
    // every job ends with a Finished event in phase order.
    let pool = pool();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = small(Algorithm::LoR, 60, 3);
    let (report, events) =
        Orchestrator::new(SpotTuneConfig::new(0.7, 1).with_seed(21), w, pool, &oracle)
            .run_traced();
    let mut notified: Vec<usize> = Vec::new();
    let mut finished = std::collections::HashSet::new();
    for e in &events {
        match e {
            TraceEvent::NoticeCheckpoint { job, .. } => notified.push(*job),
            TraceEvent::Revoked { job, .. } => {
                assert!(
                    notified.contains(job),
                    "revocation of job {job} without a prior notice"
                );
            }
            TraceEvent::Finished { job, .. } => {
                finished.insert(*job);
            }
            _ => {}
        }
    }
    assert_eq!(finished.len(), 3, "all jobs must finish");
    assert!(report.revocations as usize <= notified.len());
}

#[test]
fn learned_estimator_plugs_into_orchestrator() {
    // End-to-end with a trained predictor instead of the oracle.
    let pool = pool();
    let cfg = TrainConfig {
        lstm_hidden: 4,
        lstm_tiers: 1,
        dense_hidden: 4,
        epochs: 1,
        seed: 2,
        ..TrainConfig::default()
    };
    let set = MarketPredictorSet::train(
        PredictorKind::Logistic,
        &pool,
        SimTime::from_hours(2),
        SimTime::from_hours(30),
        SimDur::from_mins(60),
        &cfg,
    );
    let w = small(Algorithm::LiR, 40, 2);
    let report =
        Orchestrator::new(SpotTuneConfig::new(0.7, 1).with_seed(4), w, pool, &set).run();
    assert_eq!(report.predicted_finals.len(), 2);
    assert!(report.cost >= 0.0);
}
