//! Property-based tests on core invariants across crates.

use proptest::prelude::*;
use spottune::prelude::*;
use spottune_cloud::billing::{integrate_cost, settle, EndCause};
use spottune_cloud::VmId;
use spottune_earlycurve::fit::fit_stage;
use spottune_market::stats::{cov, trimmed_mean};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Billing is additive over time splits: cost(a,c) = cost(a,b) + cost(b,c).
    #[test]
    fn billing_is_additive(
        seed in 0u64..1000,
        a in 0u64..5_000,
        len1 in 1u64..5_000,
        len2 in 1u64..5_000,
    ) {
        let inst = spottune_market::instance::by_name("r3.xlarge").unwrap();
        let trace = TraceGenerator::preset(Regime::Volatile)
            .generate(&inst, SimDur::from_hours(4), seed);
        let (ta, tb, tc) = (
            SimTime::from_secs(a),
            SimTime::from_secs(a + len1),
            SimTime::from_secs(a + len1 + len2),
        );
        let whole = integrate_cost(&trace, ta, tc);
        let split = integrate_cost(&trace, ta, tb) + integrate_cost(&trace, tb, tc);
        prop_assert!((whole - split).abs() < 1e-9, "{whole} vs {split}");
    }

    /// The refund rule: net cost is zero iff provider-revoked within 1h.
    #[test]
    fn refund_rule(seed in 0u64..500, mins in 1u64..180, provider_revoked in any::<bool>()) {
        let inst = spottune_market::instance::by_name("r4.large").unwrap();
        let trace = TraceGenerator::preset(Regime::Stable)
            .generate(&inst, SimDur::from_hours(4), seed);
        let cause = if provider_revoked { EndCause::ProviderRevoked } else { EndCause::UserTerminated };
        let rec = settle(VmId::from_raw(0), "r4.large", &trace, SimTime::ZERO, SimTime::from_mins(mins), cause);
        prop_assert!(rec.gross > 0.0);
        let free = provider_revoked && mins < 60;
        prop_assert_eq!(rec.was_free(), free);
        let expected_net = if free { 0.0 } else { rec.gross };
        prop_assert!((rec.net() - expected_net).abs() < 1e-12);
    }

    /// Synthetic traces are always positive and within the configured caps.
    #[test]
    fn traces_respect_bounds(seed in 0u64..500, hours in 1u64..72) {
        let inst = spottune_market::instance::by_name("m4.2xlarge").unwrap();
        let generator = TraceGenerator::preset(Regime::Spiky);
        let trace = generator.generate(&inst, SimDur::from_hours(hours), seed);
        let (lo, hi) = trace.min_max();
        let config = generator.config();
        prop_assert!(lo >= config.floor_fraction * inst.on_demand_price() - 1e-12);
        prop_assert!(hi <= config.cap_fraction * inst.on_demand_price() + 1e-12);
        prop_assert_eq!(trace.len_minutes() as u64, hours * 60);
    }

    /// `first_exceed` really is the first minute above the threshold.
    #[test]
    fn first_exceed_is_minimal(seed in 0u64..300, threshold_frac in 0.3f64..3.0) {
        let inst = spottune_market::instance::by_name("r3.xlarge").unwrap();
        let trace = TraceGenerator::preset(Regime::Volatile)
            .generate(&inst, SimDur::from_hours(8), seed);
        let threshold = threshold_frac * 0.25 * inst.on_demand_price();
        match trace.first_exceed(SimTime::ZERO, SimDur::from_hours(8), threshold) {
            Some(at) => {
                prop_assert!(trace.price_at(at) > threshold);
                for m in 0..at.minute_index() {
                    prop_assert!(trace.price_at(SimTime::from_mins(m)) <= threshold);
                }
            }
            None => {
                let (_, hi) = trace.min_max();
                prop_assert!(hi <= threshold);
            }
        }
    }

    /// Trimmed mean is bounded by min/max and matches the plain mean for
    /// constant inputs.
    #[test]
    fn trimmed_mean_bounds(xs in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let tm = trimmed_mean(&xs, 0.2);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tm >= lo - 1e-12 && tm <= hi + 1e-12);
    }

    /// The fitted stage model is non-increasing in k (non-negative
    /// coefficients guarantee it), so extrapolation never exceeds the last
    /// observed prediction.
    #[test]
    fn stage_fit_is_monotone(a1 in 0.001f64..0.5, a2 in 0.1f64..2.0, a3 in 0.0f64..1.0) {
        let points: Vec<(u64, f64)> = (0..60)
            .map(|k| (k, a3 + 1.0 / (a1 * k as f64 + a2)))
            .collect();
        let fit = fit_stage(&points, 0);
        let mut prev = f64::INFINITY;
        for k in (0..600).step_by(17) {
            let v = fit.predict(k);
            prop_assert!(v <= prev + 1e-9, "fit increased at {k}");
            prop_assert!(v.is_finite() && v >= 0.0);
            prev = v;
        }
    }

    /// Performance samples stay positive with bounded dispersion.
    #[test]
    fn perf_samples_bounded(seed in 0u64..200) {
        use rand::{rngs::StdRng, SeedableRng};
        let model = PerfModel::new();
        let w = Workload::benchmark(Algorithm::AlexNet);
        let hp = w.hp_grid()[0].clone();
        let inst = spottune_market::instance::by_name("r4.xlarge").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..100).map(|_| model.sample_spe(&inst, &w, &hp, &mut rng)).collect();
        prop_assert!(samples.iter().all(|&s| s > 0.0));
        prop_assert!(cov(&samples) < 0.12);
    }

    /// Grid expansion size is the product of axis lengths and all settings
    /// are distinct.
    #[test]
    fn grid_expansion_product(n1 in 1usize..4, n2 in 1usize..4, n3 in 1usize..4) {
        let axes = vec![
            GridAxis::new("a", (0..n1).map(|i| HpValue::Int(i as i64)).collect()),
            GridAxis::new("b", (0..n2).map(|i| HpValue::Int(i as i64)).collect()),
            GridAxis::new("c", (0..n3).map(|i| HpValue::Int(i as i64)).collect()),
        ];
        let grid = expand_grid(&axes);
        prop_assert_eq!(grid.len(), n1 * n2 * n3);
        let ids: std::collections::HashSet<String> = grid.iter().map(|h| h.id()).collect();
        prop_assert_eq!(ids.len(), grid.len());
    }
}
