//! Substrate-level integration tests: CSV ingestion feeding the full
//! market/feature pipeline, the superlinear EarlyCurve extension, and
//! cross-crate consistency checks.

use spottune::prelude::*;
use spottune_earlycurve::superlinear::{fit_geometric, AutoFit};
use spottune_market::csvload::{parse_csv, traces_from_records};

#[test]
fn csv_traces_feed_the_whole_pipeline() {
    // Synthesize a CSV in the Kaggle schema, load it, and run features,
    // labels and billing on the resulting market.
    let mut csv = String::from("timestamp,instance_type,os,region,price\n");
    for m in 0..240u64 {
        // r4.large: a slow ramp and recovery.
        let price = 0.04 + 0.03 * ((m as f64 / 40.0).sin().abs());
        csv.push_str(&format!("{},r4.large,Linux/UNIX,us-east-1a,{price:.4}\n", m * 60));
    }
    let records = parse_csv(&csv).expect("valid csv");
    let traces = traces_from_records(&records);
    let trace = traces.get("r4.large").expect("instance present").clone();
    assert_eq!(trace.len_minutes(), 240);

    let inst = spottune_market::instance::by_name("r4.large").expect("catalog");
    let market = SpotMarket::new(inst, trace);
    // Feature extraction works on loaded data.
    let f = spottune_revpred::features::raw_features(market.trace(), SimTime::from_mins(90));
    assert!(f[0] > 0.0);
    // Billing integrates the loaded prices.
    let mut provider =
        spottune_cloud::CloudProvider::new(MarketPool::new(vec![market]));
    let vm = provider
        .request_spot(SimTime::from_mins(10), "r4.large", 10.0)
        .expect("high max price accepted");
    let bill = provider.terminate(SimTime::from_mins(70), vm);
    assert!(bill.gross > 0.0 && !bill.was_free());
}

#[test]
fn superlinear_autofit_handles_both_families() {
    // Sublinear (GD-style) data → rational family extrapolates well.
    let sublinear: Vec<(u64, f64)> = (0..60)
        .map(|k| (k, 0.4 + 1.0 / (0.25 * k as f64 + 1.0)))
        .collect();
    let auto = AutoFit::fit(&sublinear, 0);
    assert!((auto.predict(500) - 0.4).abs() < 0.1);

    // Superlinear (L-BFGS-style) data → geometric family, tight plateau.
    let superlinear: Vec<(u64, f64)> = (0..40)
        .map(|k| (k, 0.15 + 3.0 * 0.8f64.powi(k as i32)))
        .collect();
    let auto = AutoFit::fit(&superlinear, 0);
    assert!(matches!(auto, AutoFit::Geometric(_)));
    assert!((auto.predict(200) - 0.15).abs() < 0.02);
    // The rational family alone would miss the plateau harder than the
    // geometric fit does.
    let rational = spottune_earlycurve::fit::fit_stage(&superlinear, 0);
    let geometric = fit_geometric(&superlinear, 0);
    assert!(geometric.mse <= rational.mse);
}

#[test]
fn standard_pool_has_stable_and_unstable_markets() {
    // §V.A requires both regimes in the pool — check empirically.
    let pool = MarketPool::standard(SimDur::from_days(8), 42);
    let price_range_ratio = |name: &str| {
        let m = pool.market(name).expect("catalog");
        let (lo, hi) = m.trace().min_max();
        hi / lo
    };
    assert!(price_range_ratio("r4.2xlarge") < 3.0, "r4.2xlarge should be stable");
    assert!(price_range_ratio("m4.2xlarge") > 5.0, "m4.2xlarge should be unstable");
}

#[test]
fn workload_grids_match_their_trainers() {
    // Every grid point constructs a working TrainingRun and positive SPE on
    // every catalog instance — the orchestrator's operating envelope.
    let perf = PerfModel::new();
    for w in Workload::all_benchmarks() {
        for hp in w.hp_grid() {
            let mut run = TrainingRun::new(&w, hp, 1);
            assert!(run.metric_at(1).is_finite());
            for inst in spottune_market::instance::catalog() {
                assert!(perf.true_spe(&inst, &w, hp) > 0.0);
            }
        }
    }
}

#[test]
fn continuation_accounting_is_consistent() {
    // cost ≤ cost_with_continuation and jct ≤ jct_with_continuation, with
    // equality at θ = 1.
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let base = Workload::benchmark(Algorithm::Svm);
    let w = Workload::custom(Algorithm::Svm, 60, base.hp_grid()[..4].to_vec());
    let partial =
        Orchestrator::new(SpotTuneConfig::new(0.5, 2).with_seed(3), w.clone(), pool.clone(), &oracle)
            .run();
    assert!(partial.cost <= partial.cost_with_continuation + 1e-9);
    assert!(partial.jct <= partial.jct_with_continuation);
    let full =
        Orchestrator::new(SpotTuneConfig::new(1.0, 2).with_seed(3), w, pool, &oracle).run();
    assert!((full.cost - full.cost_with_continuation).abs() < 1e-12);
    assert_eq!(full.jct, full.jct_with_continuation);
}
