//! Integration tests of the prediction stack: EarlyCurve against real
//! trainer curves, and the revocation predictors against market ground
//! truth.

use spottune::prelude::*;

#[test]
fn earlycurve_tracks_real_logreg_curve() {
    let w = Workload::benchmark(Algorithm::LoR);
    let hp = w.hp_grid()[0].clone();
    let mut run = TrainingRun::new(&w, &hp, 42);
    let max = w.max_trial_steps();
    let observed = (0.7 * max as f64).ceil() as u64;
    let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
    for k in 1..=observed {
        ec.push(k, run.metric_at(k));
    }
    let pred = ec.predict_final(max).expect("enough points");
    let truth = run.final_metric();
    // Absolute accuracy is what the ranking consumes; the losses here are
    // small (~0.03), so a tight absolute bound is the meaningful one.
    assert!(
        (pred - truth).abs() < 0.05,
        "absolute error too large (pred {pred}, truth {truth})"
    );
}

#[test]
fn earlycurve_beats_slaq_on_staged_cnn_curves() {
    // Aggregated over all 16 ResNet configurations (the Fig. 11(b) claim).
    let w = Workload::benchmark(Algorithm::ResNet);
    let max = w.max_trial_steps();
    let observed = (0.7 * max as f64).ceil() as u64;
    let (mut err_ec, mut err_slaq) = (0.0, 0.0);
    for hp in w.hp_grid() {
        let mut run = TrainingRun::new(&w, hp, 42);
        let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
        let mut slaq = Slaq::new();
        for k in 1..=observed {
            let m = run.metric_at(k);
            ec.push(k, m);
            slaq.push(k, m);
        }
        let truth = run.final_metric();
        err_ec += (ec.predict_final(max).expect("fit") - truth).abs();
        err_slaq += (slaq.predict_final(max).expect("fit") - truth).abs();
    }
    assert!(
        err_ec * 2.0 < err_slaq,
        "EarlyCurve total error {err_ec} should be well under SLAQ's {err_slaq}"
    );
}

#[test]
fn stage_boundary_matches_decay_epoch() {
    let w = Workload::benchmark(Algorithm::ResNet);
    let hp = w
        .hp_grid()
        .iter()
        .find(|h| h.int("de") == 40)
        .expect("grid has de=40");
    let mut run = TrainingRun::new(&w, hp, 42);
    let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
    for k in 1..=70 {
        ec.push(k, run.metric_at(k));
    }
    let boundaries = ec.boundaries();
    assert_eq!(boundaries.len(), 1, "exactly one stage change, got {boundaries:?}");
    let b = boundaries[0] as i64;
    assert!((b - 40).abs() <= 2, "boundary {b} should sit at the decay epoch 40");
}

#[test]
fn oracle_estimator_matches_market_ground_truth() {
    let pool = MarketPool::standard(SimDur::from_days(5), 42);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    for market in pool.iter() {
        for h in [3u64, 30, 80] {
            let t = SimTime::from_hours(h);
            let price = market.price_at(t);
            let max_price = price + 0.02;
            let p = oracle.revocation_probability(market.instance().name(), t, max_price);
            let truth = market.revoked_within_hour(t, max_price);
            assert_eq!(p > 0.5, truth, "{} at {t}", market.instance().name());
        }
    }
}

#[test]
fn revpred_learns_better_than_chance() {
    // A compact end-to-end check (full comparison lives in fig10_revpred):
    // RevPred trained on one volatile market must beat label-frequency
    // guessing on held-out samples.
    let pool = MarketPool::standard(SimDur::from_days(8), 42);
    let market = pool.market("m4.2xlarge").expect("catalog");
    let cfg = TrainConfig {
        lstm_hidden: 8,
        lstm_tiers: 2,
        dense_hidden: 8,
        epochs: 5,
        seed: 3,
        ..TrainConfig::default()
    };
    let train = build_dataset(
        market,
        SimTime::from_hours(2),
        SimTime::from_days(6),
        SimDur::from_mins(15),
        DeltaPolicy::Algorithm2,
        7,
    );
    let mut net = RevPredNet::new(&cfg);
    net.train(&train, &cfg);
    let test = build_dataset(
        market,
        SimTime::from_days(6),
        SimTime::from_days(8) - SimDur::from_hours(2),
        SimDur::from_mins(15),
        DeltaPolicy::UniformRandom,
        8,
    );
    let probs: Vec<f64> = test.iter().map(|s| net.predict(s)).collect();
    let labels: Vec<bool> = test.iter().map(|s| s.label).collect();
    let eval = BinaryEval::score(&probs, &labels, 0.5);
    let base_rate = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
    let majority = base_rate.max(1.0 - base_rate);
    assert!(
        eval.accuracy() > 0.5 && eval.f1() > 0.0,
        "accuracy {} f1 {} (majority {majority})",
        eval.accuracy(),
        eval.f1()
    );
}

#[test]
fn checkpoint_sizes_fit_notice_window_on_all_instances() {
    // §IV.F: every benchmark model must upload within the 120 s notice on
    // every catalog instance (the orchestrator relies on this).
    use spottune_cloud::storage::max_model_size_mb;
    for w in Workload::all_benchmarks() {
        for hp in w.hp_grid() {
            let size = w.model_size_mb(hp);
            for inst in spottune_market::instance::catalog() {
                assert!(
                    size <= max_model_size_mb(&inst),
                    "{} ({} MB) exceeds the window on {}",
                    w.algorithm(),
                    size,
                    inst.name()
                );
            }
        }
    }
}
