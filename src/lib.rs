//! # SpotTune
//!
//! A comprehensive Rust reproduction of *SpotTune: Leveraging Transient
//! Resources for Cost-efficient Hyper-parameter Tuning in the Public Cloud*
//! (ICDCS 2020): an orchestrating system that runs hyper-parameter tuning on
//! revocable spot instances, combining fine-grained cost-aware provisioning
//! (expected step cost with learned revocation probabilities) with staged
//! training-curve prediction for early shutdown of unpromising models.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`market`] — spot markets, price traces, synthetic trace generation;
//! * [`cloud`] — the discrete-event cloud (VMs, billing with first-hour
//!   refunds, object storage);
//! * [`nn`] — the small LSTM/dense neural-network library;
//! * [`mlsim`] — benchmark workloads, real trainers and the performance model;
//! * [`earlycurve`] — staged curve fitting and the SLAQ baseline;
//! * [`revpred`] — the RevPred revocation predictor and its baselines;
//! * [`core`] — the SpotTune orchestrator, baselines, campaigns and reports;
//! * [`server`] — the long-running sharded multi-campaign service.
//!
//! ## Example
//!
//! ```
//! use spottune::prelude::*;
//!
//! let pool = MarketPool::standard(SimDur::from_days(3), 42);
//! let oracle = OracleEstimator::new(pool.clone(), 0.9);
//! let base = Workload::benchmark(Algorithm::LoR);
//! // A tiny slice of the benchmark keeps the doctest fast.
//! let workload = Workload::custom(Algorithm::LoR, 20, base.hp_grid()[..2].to_vec());
//! let report = Orchestrator::new(SpotTuneConfig::new(0.5, 1), workload, pool, &oracle).run();
//! assert_eq!(report.predicted_finals.len(), 2);
//! ```

pub use spottune_cloud as cloud;
pub use spottune_core as core;
pub use spottune_earlycurve as earlycurve;
pub use spottune_market as market;
pub use spottune_mlsim as mlsim;
pub use spottune_nn as nn;
pub use spottune_revpred as revpred;
pub use spottune_server as server;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use spottune_cloud::prelude::*;
    pub use spottune_core::prelude::*;
    pub use spottune_earlycurve::prelude::*;
    pub use spottune_market::prelude::*;
    pub use spottune_mlsim::prelude::*;
    pub use spottune_revpred::prelude::*;
}
